(** Shared worker-transport machinery: one scheduler, many transports.

    {!Proc} (pipe-connected subprocesses) and {!Remote} (TCP-connected
    fleet workers) both run tasks through this module. A transport
    contributes {e endpoints} — connected, handshaken workers wrapped
    in an {!endpoint} record — and a respawn hook; the scheduler owns
    everything else: length-prefixed frame IO, the handshake/resync
    magic, crash detection and bounded-retry requeue, per-task
    timeouts, work stealing (speculative tail duplication: idle
    workers re-run the oldest in-flight task once the queue drains, so
    one slow host cannot serialize the tail; first result wins and
    merging stays exactly-once), local draining when every worker is
    gone, and the CAS side-channel that lets workers fetch and publish
    artifacts by digest over their task connection.

    Tasks must be pure (or idempotent): crash recovery and stealing
    both re-execute tasks, i.e. the scheduler provides at-least-once
    execution with exactly-once {e result merging} in submission
    order. *)

exception Spawn_failure of string
(** No worker could be brought up (exec/connect failure, fd
    exhaustion, handshake timeout). *)

exception Remote_failure of { message : string }
(** The task itself raised inside a worker. [message] is the printed
    form of the worker-side exception ([Printexc.to_string]);
    exception {e identity} does not survive unmarshalling.
    Deterministic task failures are not retried. *)

exception Worker_lost of { attempts : int; reason : string }
(** A worker died (EOF / SIGKILL / timeout / corrupt frames) while
    running the task and the bounded retries were exhausted;
    [attempts] counts executions that ended in a crash. *)

exception Frame_too_large of { bytes : int }
(** A frame payload exceeded {!max_frame_bytes}. Raised by
    {!write_frame} before anything is written (a wrapped 4-byte header
    would corrupt the stream); a task whose marshalled form is oversize
    fails with this in its result slot, without blaming the worker. *)

exception Auth_failure
(** The peer's shared-secret preamble was missing, oversize, or did not
    match the expected token. Raised by {!serve_worker} before any
    frame is unmarshalled — task frames carry closures, so an
    unauthenticated peer must never get that far. *)

(** {1 Framed IO} *)

val restart_on_intr : (unit -> 'a) -> 'a
(** Retry a syscall wrapper on [EINTR]. *)

val write_frame : Unix.file_descr -> string -> unit
(** One length-prefixed frame: 4-byte big-endian length, then payload.
    Raises {!Frame_too_large} (before writing anything) when the
    payload exceeds {!max_frame_bytes}. *)

val read_frame : Unix.file_descr -> string
(** Read one frame. Raises [End_of_file] on a closed stream, a
    negative length, or a length above {!max_frame_bytes} — corrupt
    headers deliberately read as stream death so they route into crash
    recovery. *)

val max_frame_bytes : int

val magic : string
(** Stream-resync marker a worker emits before its first frame, so
    init-time stdout noise ahead of it is discarded by the parent. *)

(** {1 Shared-secret auth}

    Task frames are [Marshal.Closures] payloads — speaking the protocol
    is arbitrary code execution in the peer. Pipe workers inherit
    private fds and use the empty token; TCP workers must be driven
    with a non-empty shared secret whenever they listen beyond
    loopback. The parent's first bytes on a fresh connection are the
    token (raw, never marshalled, compared in constant time under a
    small length cap); the worker folds the same token into its ready
    frame, so {!handshake} authenticates the worker back. *)

val write_auth : Unix.file_descr -> token:string -> unit
(** Send the auth preamble. Always the first write on a connection,
    before {!write_config}. *)

(** {1 Worker side} *)

type worker_config = { disk_dir : string option; disk_max : int option }
(** The parent's disk-cache configuration, forwarded in the first
    frame of every connection and applied before the worker signals
    readiness. *)

val current_config : unit -> worker_config
val write_config : Unix.file_descr -> unit

type wire_result = (Obj.t, string * string) result

type down =
  | Task of int * (unit -> Obj.t)
  | Cas_found of string
  | Cas_missing
      (** Parent-to-worker frames: task dispatch and CAS-fetch replies. *)

type up =
  | Result of int * wire_result
  | Cas_get of string * string  (** [(cache, key_digest)]: blocking fetch *)
  | Cas_put of string * string * string
      (** [(cache, key_digest, payload)]: fire-and-forget publish *)

val serve_worker :
  in_fd:Unix.file_descr -> out_fd:Unix.file_descr -> ?token:string -> unit -> unit
(** Run the worker side of the protocol on an established channel:
    verify the parent's auth preamble against [token] (default [""];
    raises {!Auth_failure} on mismatch, before unmarshalling anything),
    read the config frame, configure the disk cache, install the
    {!Cache.remote_tier} hook that forwards cache misses to the parent
    as [Cas_get]/[Cas_put] frames, emit [magic] + the ready frame,
    then serve task frames until EOF (returns normally; the caller
    decides the exit). The remote-tier hook is uninstalled on the way
    out. Callers must route stray stdout away from [out_fd] first when
    the channel is the process's fd 1. *)

(** {1 Parent side} *)

val handshake : deadline_s:float -> ?token:string -> Unix.file_descr -> unit
(** Scan for [magic] (discarding init noise byte-by-byte) and read the
    ready frame — which must carry [token] (default [""]) back — all
    under a deadline. Raises [Failure] or [End_of_file] when the peer
    is not a live worker holding the same secret. *)

type endpoint = {
  ep_send : Unix.file_descr;  (** parent writes down-frames *)
  ep_recv : Unix.file_descr;  (** parent selects/reads up-frames *)
  ep_kill : unit -> unit;
      (** force the peer down now (SIGKILL a child, close a socket) *)
  ep_close : unit -> unit;
      (** release everything the endpoint holds, gracefully where
          possible; crash paths run [ep_kill] first *)
}

(** Parent-side artifact store answering workers' CAS frames:
    disk-backed through {!Cache}'s content-addressed tier when one is
    configured, otherwise a bounded in-memory table. *)
module Store : sig
  type t

  val create : unit -> t
  val get : t -> cache:string -> key_digest:string -> string option
  val put : t -> cache:string -> key_digest:string -> payload:string -> unit
end

type sched

val make_sched :
  ?retries:int ->
  ?timeout_s:float ->
  ?steal_after:float ->
  respawn:(int -> endpoint option) ->
  endpoint option array ->
  sched
(** A scheduler over pre-connected endpoints ([None] slots are workers
    that failed to come up; they may be refilled by [respawn] after a
    crash). [retries] (default [2]) bounds how many crashed executions
    a task absorbs before [Worker_lost]; [timeout_s] kills a worker
    stuck on one task; [steal_after] (default [1.0]s, clamped to
    [>= 0.01]) is the in-flight age below which tasks are never
    duplicated. A [respawn] that returns [None] after a crash is
    retried from [map] with exponential backoff (1s doubling to 10s)
    while tasks are pending, so a slot whose worker comes back later
    (a restarted daemon, a busy daemon finishing its severed task) is
    recovered instead of silently lost; [respawn] should therefore
    fail fast rather than block. *)

val map : sched -> ('a -> 'b) -> 'a array -> ('b, exn * string) result array
(** Run [f] over every element on the workers; results in input order.
    Worker-side task exceptions surface as
    [Error (Remote_failure _, backtrace)]; exhausted retries as
    [Error (Worker_lost _, "")]. Corrupt, truncated or garbage frames
    from a worker never raise — they read as that worker crashing. If
    no worker is left alive and none respawns, remaining tasks run on
    the calling process. Workers still running a duplicated task when
    the map completes are killed and respawned (their late frames must
    not leak into the next map) without counting as restarts. Not
    re-entrant. *)

val shutdown : sched -> unit
(** Close every endpoint (graceful path). Idempotent. *)

val workers : sched -> int
val restarts : sched -> int
val busy_times : sched -> float array

val store : sched -> Store.t
(** The scheduler's artifact store — exposed so callers (and tests)
    can pre-seed artifacts workers will fetch by digest. *)

(** {1 Process helpers shared by transports} *)

val close_noerr : Unix.file_descr -> unit
val kill_noerr : int -> unit
val reap_noerr : int -> unit

val reap_with_grace : int -> unit
(** Wait up to ~1s for a child asked to exit, then SIGKILL and reap. *)
