(* Content-addressed object files. See cas.mli for the contract.

   Layout is deliberately flat (one directory, no fan-out subdirs): the
   cache's LRU eviction and the regression suite both enumerate the
   tier with a single [Sys.readdir] over [*.bin], and sweep-sized
   object counts (thousands) are far below the point where flat
   directories hurt. Objects are [cas-<digest>.bin]; key references
   are [<cache>-<keydigest>.ref] text files holding the object digest.
   Both are written atomically (tmp + rename) so a crash mid-write can
   only leave a [.tmp] corpse, never a half-object. *)

let digest_hex payload = Digest.to_hex (Digest.string payload)
let object_name digest = Printf.sprintf "cas-%s.bin" digest
let object_path ~dir digest = Filename.concat dir (object_name digest)

let ref_path ~dir ~cache ~key_digest =
  Filename.concat dir (Printf.sprintf "%s-%s.ref" cache key_digest)

let is_object name = Filename.check_suffix name ".bin"
let is_ref name = Filename.check_suffix name ".ref"

(* An object digest doubles as a file-name component, so anything that
   is not a 32-char lowercase hex string is rejected before it can
   reach [Filename.concat]. *)
let is_digest s =
  String.length s = 32
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Some s
          | exception (End_of_file | Sys_error _) -> None)

let write_atomic ~path content =
  let tmp = path ^ ".tmp" in
  match open_out_bin tmp with
  | exception Sys_error _ -> false
  | oc -> (
      let ok =
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            match output_string oc content with
            | () -> true
            | exception Sys_error _ -> false)
      in
      if ok then
        match Sys.rename tmp path with
        | () -> true
        | exception Sys_error _ ->
            (try Sys.remove tmp with Sys_error _ -> ());
            false
      else begin
        (try Sys.remove tmp with Sys_error _ -> ());
        false
      end)

let read_ref ~dir ~cache ~key_digest =
  match read_file (ref_path ~dir ~cache ~key_digest) with
  | None -> None
  | Some s ->
      let s = String.trim s in
      if is_digest s then Some s else None

let write_ref ~dir ~cache ~key_digest ~digest =
  ignore (write_atomic ~path:(ref_path ~dir ~cache ~key_digest) digest : bool)

let remove_ref ~dir ~cache ~key_digest =
  try Sys.remove (ref_path ~dir ~cache ~key_digest) with Sys_error _ -> ()

let read_object ~dir digest =
  if not (is_digest digest) then None
  else
    match read_file (object_path ~dir digest) with
    | None -> None
    | Some payload ->
        if String.equal (digest_hex payload) digest then Some payload
        else begin
          (* The object does not hash to its name: a torn write or bit
             rot. Self-repair by dropping it — the next lookup misses
             and recomputes, which rewrites a good copy. *)
          (try Sys.remove (object_path ~dir digest) with Sys_error _ -> ());
          None
        end

let write_object ~dir ~payload =
  let digest = digest_hex payload in
  let path = object_path ~dir digest in
  let already =
    match Unix.stat path with
    | st ->
        st.Unix.st_kind = Unix.S_REG && st.Unix.st_size = String.length payload
    | exception Unix.Unix_error _ -> false
  in
  if already then Some digest
  else if write_atomic ~path payload then Some digest
  else None

let prune_refs ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if is_ref name then
            let path = Filename.concat dir name in
            let target =
              match read_file path with
              | None -> None
              | Some s ->
                  let s = String.trim s in
                  if is_digest s then Some s else None
            in
            let dangling =
              match target with
              | None -> true
              | Some digest -> not (Sys.file_exists (object_path ~dir digest))
            in
            if dangling then try Sys.remove path with Sys_error _ -> ())
        names
