(** Run metrics for pool-driven grids: per-task wall time, cache
    hit/miss counters and pool utilization.

    A {!t} is a passive collector threaded through a run; {!snapshot}
    freezes it (capturing {!Cache.all_stats} at that moment) into a
    value that renders as table rows or JSON. Recording is
    domain-safe, but runners normally record in submission order after
    the parallel section so snapshots are deterministic. *)

type task = { label : string; wall_s : float }

type snapshot = {
  tasks : task list;  (** submission order; one entry per grid cell *)
  jobs : int;
  backend : string;
      (** execution backend identity ({!Pool.backend_name}):
          ["domains"] or ["procs"] *)
  worker_restarts : int;
      (** worker processes lost and replaced during the run; [0] under
          the domain backend *)
  wall_s : float;  (** whole-run wall-clock time *)
  busy_s : float;  (** sum of task wall times *)
  utilization : float;  (** [busy_s / (jobs * wall_s)]; 0 when unknown *)
  domain_busy_s : float array;
      (** cumulative busy seconds per worker domain ({!Pool.busy_times});
          empty when not recorded *)
  load_balance : float;
      (** max/mean of [domain_busy_s]: [1.0] is perfectly balanced, higher
          means some domain was pinned; [0.] when unknown *)
  caches : (string * Cache.stats) list;
  disk : Cache.disk_stats option;
      (** disk-tier size accounting and eviction counters; [None] when
          the disk tier is disabled *)
}

type t

val create : unit -> t
val record : t -> label:string -> wall_s:float -> unit
val set_jobs : t -> int -> unit

val set_backend : t -> string -> unit
(** Record which pool backend actually ran the grid (use
    {!Pool.backend_name} on {!Pool.backend} so a degraded [Procs]
    request reports ["domains"]). Defaults to ["domains"]. *)

val set_worker_restarts : t -> int -> unit
(** Record {!Pool.restarts} captured just before shutdown. *)

val set_wall : t -> float -> unit

val set_domain_busy : t -> float array -> unit
(** Record the per-domain busy times of the pool that ran the grid
    (usually {!Pool.busy_times} captured just before shutdown). *)

val time : t -> label:string -> (unit -> 'a) -> 'a
(** Run the thunk, record its wall time under [label]. *)

val snapshot : t -> snapshot

val task_rows : snapshot -> string list list
(** One row per task: label, wall seconds, share of busy time. *)

val cache_rows : snapshot -> string list list
(** One row per cache: name, hits, disk hits, remote hits, misses,
    hit rate. *)

val to_json : snapshot -> string
(** Self-contained JSON object (no external dependency). *)
