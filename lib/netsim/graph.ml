type t = {
  nodes : Node.t array;
  links : Link.t list;
  adjacency : (int * float) list array;
}

let create node_list link_list =
  let n = List.length node_list in
  let nodes = Array.make n None in
  List.iter
    (fun (node : Node.t) ->
      if node.id < 0 || node.id >= n then
        invalid_arg "Graph.create: node ids must be dense 0..n-1";
      match nodes.(node.id) with
      | Some _ -> invalid_arg "Graph.create: duplicate node id"
      | None -> nodes.(node.id) <- Some node)
    node_list;
  let nodes =
    Array.map (function Some node -> node | None -> assert false) nodes
  in
  let adjacency = Array.make n [] in
  List.iter
    (fun (link : Link.t) ->
      if link.a < 0 || link.a >= n || link.b < 0 || link.b >= n then
        invalid_arg "Graph.create: link references unknown node";
      adjacency.(link.a) <- (link.b, link.length_miles) :: adjacency.(link.a);
      adjacency.(link.b) <- (link.a, link.length_miles) :: adjacency.(link.b))
    link_list;
  { nodes; links = link_list; adjacency }

let node_count t = Array.length t.nodes
let link_count t = List.length t.links
let nodes t = Array.copy t.nodes
let links t = t.links

let node t id =
  if id < 0 || id >= Array.length t.nodes then invalid_arg "Graph.node: bad id";
  t.nodes.(id)

let neighbors t id =
  if id < 0 || id >= Array.length t.nodes then
    invalid_arg "Graph.neighbors: bad id";
  t.adjacency.(id)

type path = { hops : int list; length_miles : float }

(* A minimal binary min-heap on (distance, node). *)
module Heap = struct
  type t = {
    mutable data : (float * int) array;
    mutable size : int;
  }

  let create () = { data = Array.make 64 (0., 0); size = 0 }
  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h entry =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0., 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- entry;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some top
    end
end

let dijkstra t src =
  let n = Array.length t.nodes in
  if src < 0 || src >= n then invalid_arg "Graph: bad source id";
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  dist.(src) <- 0.;
  let heap = Heap.create () in
  Heap.push heap (0., src);
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          List.iter
            (fun (v, w) ->
              let candidate = d +. w in
              if candidate < dist.(v) then begin
                dist.(v) <- candidate;
                prev.(v) <- u;
                Heap.push heap (candidate, v)
              end)
            t.adjacency.(u);
        drain ()
  in
  drain ();
  (dist, prev)

let shortest_path_lengths t ~src = fst (dijkstra t src)

let shortest_path t ~src ~dst =
  let n = Array.length t.nodes in
  if dst < 0 || dst >= n then invalid_arg "Graph.shortest_path: bad dst id";
  let dist, prev = dijkstra t src in
  if Float.equal dist.(dst) infinity then None
  else
    let rec backtrack acc u = if u = src then src :: acc else backtrack (u :: acc) prev.(u) in
    Some { hops = backtrack [] dst; length_miles = dist.(dst) }

let path_distance_miles t ~src ~dst =
  let dist = shortest_path_lengths t ~src in
  if Float.equal dist.(dst) infinity then None else Some dist.(dst)

let is_connected t =
  match Array.length t.nodes with
  | 0 -> true
  | _ ->
      let dist = shortest_path_lengths t ~src:0 in
      Array.for_all (fun d -> d < infinity) dist

let pp ppf t =
  Format.fprintf ppf "graph: %d nodes, %d links" (node_count t) (link_count t)
