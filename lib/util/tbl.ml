(* Deterministic hash-table traversal: the one place in the tree where
   a raw unordered traversal is allowed, because the stable sort below
   erases the bucket order before anything escapes. *)

(* lint: allow D005 — the deliberately polymorphic default comparator; callers with float-bearing keys pass ~compare. *)
let default_compare : 'a -> 'a -> int = Stdlib.compare

let sorted_bindings ?compare:(cmp = default_compare) tbl =
  (* lint: allow D002 — this helper IS the blessed sorted traversal; the stable sort erases hash order. *)
  let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  (* [Hashtbl.fold] visits same-key bindings most-recent-first (that
     much the stdlib does specify); a *stable* sort on the key alone
     keeps that relative order while making the inter-key order a pure
     function of the keys. *)
  List.stable_sort (fun (ka, _) (kb, _) -> cmp ka kb) bindings

let fold_sorted ?compare:cmp f tbl init =
  List.fold_left
    (fun acc (k, v) -> f k v acc)
    init
    (sorted_bindings ?compare:cmp tbl)

let iter_sorted ?compare:cmp f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ?compare:cmp tbl)

let sorted_keys ?compare:(cmp = default_compare) tbl =
  let keys = List.map fst (sorted_bindings ~compare:cmp tbl) in
  (* Distinct: drop the shadowed duplicates that follow their most
     recent binding. *)
  let rec dedup = function
    | a :: (b :: _ as rest) when cmp a b = 0 -> dedup rest
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup keys
