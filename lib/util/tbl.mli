(** Deterministic hash-table traversal.

    [Hashtbl.iter]/[Hashtbl.fold] visit bindings in bucket order — a
    function of the hash seed and insertion history, not of the keys.
    Any traversal whose results feed reports, grids or cache
    accounting therefore risks leaking nondeterminism into rendered
    output, which would break the engine's byte-identical golden
    guarantee.  This module is the blessed path: every traversal is
    routed through a stable sort on the keys first, so the order seen
    by callers depends only on the table's contents.

    The repo's [tiered-lint] rule D002 flags every raw
    [Hashtbl.iter]/[Hashtbl.fold] in [lib/]; call these helpers (or
    carry an inline justified suppression) instead. *)

val sorted_bindings :
  ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings sorted by key ([Stdlib.compare] by default).  When a
    key has several bindings (shadowed via [Hashtbl.add]) they appear
    most-recently-added first, matching [Hashtbl.find_all]. *)

val fold_sorted :
  ?compare:('a -> 'a -> int) ->
  ('a -> 'b -> 'acc -> 'acc) ->
  ('a, 'b) Hashtbl.t ->
  'acc ->
  'acc
(** [fold_sorted f tbl init] folds over [sorted_bindings tbl] in
    ascending key order. *)

val iter_sorted :
  ?compare:('a -> 'a -> int) -> ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [iter_sorted f tbl] applies [f] to every binding in ascending key
    order. *)

val sorted_keys : ?compare:('a -> 'a -> int) -> ('a, 'b) Hashtbl.t -> 'a list
(** Distinct keys in ascending order. *)
