(** Incremental re-tiering: warm-started tier solves per window.

    Posted tiers must be {e cut-for-cut} what a from-scratch solve on
    the same window would produce; incrementality is purely an
    optimization. Three layers make that hold (DESIGN.md §12):

    {ol
    {- {b Frozen calibration.} {!Tiered.Market.fit} rescales γ (and the
       cost model's set-wide normalizations) from whatever flows it is
       given, so refitting per window would reprice {e every} flow on
       any change and kill incrementality. Instead the first non-empty
       window calibrates once — γ from the fit, relative costs pinned by
       {!Tiered.Cost_model.freeze} — and later windows rebuild the
       market via [Market.of_parameters] with only the valuations
       tracking demand (per-flow closed form under CED; the global
       logit inversion otherwise).}
    {- {b Positional dirty detection.} Flows are pre-sorted by (absolute
       cost, flow id), making the DP's cost order the identity; the
       window's signature is the per-position (cost, valuation, id)
       triple and [dirty_from] is the first position whose triple
       changed. Under CED the segment values left of [dirty_from] are
       bitwise unchanged (prefix sums of per-flow terms), so
       {!Numerics.Segdp.solve_warm} recomputes only the dirty suffix;
       when the flow {e set} changes (arrivals/departures), the clean
       common prefix plays the same role and
       {!Numerics.Segdp.solve_structural} remaps the retained state
       through the cost-order index injection instead of cold-solving.
       Logit's segment values carry set-wide normalizers, so its dirty
       detection is all-or-nothing: identical signature replays the
       retained optimum, anything else recomputes in full.}
    {- {b Verification.} Every warm layer is re-validated by the same
       spot-check the cold solver runs, with the exact fallback on any
       trip; [cold_every] additionally forces the divergence drill on a
       fixed cadence so the fallback path stays exercised in
       production, not just in tests.}}

    Results are optionally memoized in an {!Engine.Cache} keyed by the
    window signature: a revisited demand pattern posts its tiers
    without re-solving (the retained DP state is left untouched so
    dirty detection keeps referring to the last {e solved} window). *)

type flow_meta = {
  m_id : int;
  m_distance_miles : float;
  m_locality : Tiered.Flow.locality;
  m_on_net : bool;
}
(** Static per-flow metadata, joined by endpoint pair — what the
    workload knows about a flow beyond its measured rate. *)

val meta_of_workload :
  Flowgen.Workload.t ->
  Flowgen.Ipv4.t ->
  Flowgen.Ipv4.t ->
  flow_meta option
(** Metadata oracle over a workload's ground truth. *)

type params = {
  spec : Tiered.Market.demand_spec;
  alpha : float;
  p0 : float;
  n_bundles : int;
  cost_model : Tiered.Cost_model.t;
  samples : int;  (** Spot-check budget per DP layer (see {!Numerics.Segdp.solve}). *)
  cold_every : int;
      (** Force the divergence fallback on every [cold_every]-th
          {e actual} solve — unchanged replays and cache hits do not
          advance the cadence. [1] makes every solve cold; [0] disables
          the drill. *)
  use_cache : bool;
}

type t

val create :
  params ->
  meta_of:(Flowgen.Ipv4.t -> Flowgen.Ipv4.t -> flow_meta option) ->
  t
(** Raises [Invalid_argument] on [Linear] demand (no parametric rebuild
    exists for it — see [Market.of_parameters]), [n_bundles < 1],
    [samples < 0] or [cold_every < 0]. *)

type outcome = {
  o_bin : int;  (** Window bin the tiers were posted at. *)
  o_n_flows : int;
  o_skipped : int;  (** Window flows with no metadata (not priced). *)
  o_cuts : int list;  (** Tier boundaries in cost-order positions. *)
  o_prices : float array;  (** One price per tier. *)
  o_profit : float;
  o_solve : [ `Warm | `Cold | `Cached | `Unchanged ];
      (** [`Unchanged]: identical signature, retained optimum replayed.
          [`Cached]: posted from the result cache without solving.
          [`Warm] covers both suffix-dirty windows (same flow set) and
          structural ones (arrivals/departures remapped through
          {!Numerics.Segdp.solve_structural}). *)
  o_dirty_from : int;  (** First changed cost-order position ([n_flows]
                           when nothing changed; [0] on a cold start).
                           Under flow churn: length of the clean common
                           prefix of the old and new cost orders. *)
  o_evaluations : int;  (** [seg_value] calls this re-tier. *)
  o_fallback : bool;  (** Divergence path taken (spot-check or drill). *)
}

val retier : t -> Window.snapshot -> outcome
(** Solve the window (calibrating on the first non-empty one) and
    advance the retained state. An empty window posts no tiers and
    leaves all state untouched. *)

val solve_cold : t -> Window.snapshot -> outcome
(** Reference from-scratch solve of the same window: identical market
    construction, fresh {!Numerics.Segdp.solve}, no retained state, no
    cache. [retier]'s cuts, prices and profit are pinned equal to this
    by the acceptance tests. Calibrates like {!retier} if the instance
    has not yet seen a non-empty window. *)

val calibrated : t -> bool
