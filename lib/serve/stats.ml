type t = {
  mutable retiers : int;
  mutable warm : int;
  mutable cold : int;
  mutable cached : int;
  mutable unchanged : int;
  mutable fallbacks : int;
  mutable evaluations : int;
  mutable lat : float list;  (* seconds, reverse arrival order *)
}

let create () =
  {
    retiers = 0;
    warm = 0;
    cold = 0;
    cached = 0;
    unchanged = 0;
    fallbacks = 0;
    evaluations = 0;
    lat = [];
  }

let observe t ~solve ~latency_s ~evaluations ~fallback =
  t.retiers <- t.retiers + 1;
  (match solve with
  | `Warm -> t.warm <- t.warm + 1
  | `Cold -> t.cold <- t.cold + 1
  | `Cached -> t.cached <- t.cached + 1
  | `Unchanged -> t.unchanged <- t.unchanged + 1);
  if fallback then t.fallbacks <- t.fallbacks + 1;
  t.evaluations <- t.evaluations + evaluations;
  t.lat <- latency_s :: t.lat

type summary = {
  retiers : int;
  warm : int;
  cold : int;
  cached : int;
  unchanged : int;
  fallbacks : int;
  evaluations : int;
  warm_hit_rate : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
}

let percentile sorted ~p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else if p <= 0. then sorted.(0)
  else
    (* Nearest rank: smallest index whose rank covers p percent. *)
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)

let summary t =
  let lat = Array.of_list t.lat in
  Array.sort Float.compare lat;
  let n = Array.length lat in
  let solves = t.warm + t.unchanged + t.cold in
  {
    retiers = t.retiers;
    warm = t.warm;
    cold = t.cold;
    cached = t.cached;
    unchanged = t.unchanged;
    fallbacks = t.fallbacks;
    evaluations = t.evaluations;
    warm_hit_rate =
      (if solves = 0 then 0.
       else float_of_int (t.warm + t.unchanged) /. float_of_int solves);
    p50_ms = 1e3 *. percentile lat ~p:50.;
    p99_ms = 1e3 *. percentile lat ~p:99.;
    max_ms = (if n = 0 then 0. else 1e3 *. lat.(n - 1));
  }

type run = {
  records : int;
  dropped_dup : int;
  late : int;
  occupancy : float;
  wall_s : float;
  records_per_s : float;
}

let report s run =
  let cell_i = string_of_int in
  Tiered.Report.make ~title:"serve: streaming re-tier"
    ~header:[ "metric"; "value" ]
    [
      [ "records ingested"; cell_i run.records ];
      [ "records/s"; Tiered.Report.cell_f run.records_per_s ];
      [ "duplicates dropped"; cell_i run.dropped_dup ];
      [ "late drops"; cell_i run.late ];
      [ "window occupancy"; Tiered.Report.cell_pct run.occupancy ];
      [ "re-tiers"; cell_i s.retiers ];
      [ "warm / unchanged / cold"; Printf.sprintf "%d / %d / %d" s.warm s.unchanged s.cold ];
      [ "cache hits"; cell_i s.cached ];
      [ "fallbacks"; cell_i s.fallbacks ];
      [ "warm-start hit rate"; Tiered.Report.cell_pct s.warm_hit_rate ];
      [ "re-tier p50 (ms)"; Tiered.Report.cell_f s.p50_ms ];
      [ "re-tier p99 (ms)"; Tiered.Report.cell_f s.p99_ms ];
      [ "re-tier max (ms)"; Tiered.Report.cell_f s.max_ms ];
      [ "seg evaluations"; cell_i s.evaluations ];
      [ "wall (s)"; Tiered.Report.cell_f run.wall_s ];
    ]

let to_json s run =
  Printf.sprintf
    {|{"records": %d, "records_per_s": %.1f, "dropped_dup": %d, "late": %d, "occupancy": %.4f, "wall_s": %.4f, "retiers": %d, "warm": %d, "cold": %d, "cached": %d, "unchanged": %d, "fallbacks": %d, "evaluations": %d, "warm_hit_rate": %.4f, "p50_retier_ms": %.4f, "p99_retier_ms": %.4f, "max_retier_ms": %.4f}|}
    run.records run.records_per_s run.dropped_dup run.late run.occupancy
    run.wall_s s.retiers s.warm s.cold s.cached s.unchanged s.fallbacks
    s.evaluations s.warm_hit_rate s.p50_ms s.p99_ms s.max_ms
