type t = {
  mutable retiers : int;
  mutable warm : int;
  mutable cold : int;
  mutable cached : int;
  mutable unchanged : int;
  mutable fallbacks : int;
  mutable evaluations : int;
  mutable lat : float list;  (* seconds, reverse arrival order *)
}

let create () =
  {
    retiers = 0;
    warm = 0;
    cold = 0;
    cached = 0;
    unchanged = 0;
    fallbacks = 0;
    evaluations = 0;
    lat = [];
  }

let observe t ~solve ~latency_s ~evaluations ~fallback =
  t.retiers <- t.retiers + 1;
  (match solve with
  | `Warm -> t.warm <- t.warm + 1
  | `Cold -> t.cold <- t.cold + 1
  | `Cached -> t.cached <- t.cached + 1
  | `Unchanged -> t.unchanged <- t.unchanged + 1);
  if fallback then t.fallbacks <- t.fallbacks + 1;
  t.evaluations <- t.evaluations + evaluations;
  t.lat <- latency_s :: t.lat

type summary = {
  retiers : int;
  warm : int;
  cold : int;
  cached : int;
  unchanged : int;
  fallbacks : int;
  evaluations : int;
  warm_hit_rate : float;
  p50_ms : float option;
  p99_ms : float option;
  max_ms : float option;
}

(* Nearest rank over a sorted sample. An empty histogram has no
   quantiles — [None], not a sentinel 0 that reads as "instant" — and a
   single observation is every quantile of itself. *)
let percentile sorted ~p =
  let n = Array.length sorted in
  if n = 0 then None
  else if n = 1 || p <= 0. then Some sorted.(0)
  else
    (* Nearest rank: smallest index whose rank covers p percent. *)
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    Some sorted.(rank - 1)

let summary t =
  let lat = Array.of_list t.lat in
  Array.sort Float.compare lat;
  let n = Array.length lat in
  let solves = t.warm + t.unchanged + t.cold in
  let scale = Option.map (fun v -> 1e3 *. v) in
  {
    retiers = t.retiers;
    warm = t.warm;
    cold = t.cold;
    cached = t.cached;
    unchanged = t.unchanged;
    fallbacks = t.fallbacks;
    evaluations = t.evaluations;
    warm_hit_rate =
      (if solves = 0 then 0.
       else float_of_int (t.warm + t.unchanged) /. float_of_int solves);
    p50_ms = scale (percentile lat ~p:50.);
    p99_ms = scale (percentile lat ~p:99.);
    max_ms = (if n = 0 then None else Some (1e3 *. lat.(n - 1)));
  }

type run = {
  records : int;
  dropped_dup : int option;
  late : int;
  seq_gaps : int;
  malformed : int;
  shards : int;
  occupancy : float;
  wall_s : float;
  records_per_s : float;
}

let report s run =
  let cell_i = string_of_int in
  let cell_oi = function None -> "off" | Some v -> cell_i v in
  let cell_of = function None -> "n/a" | Some v -> Tiered.Report.cell_f v in
  Tiered.Report.make ~title:"serve: streaming re-tier"
    ~header:[ "metric"; "value" ]
    [
      [ "records ingested"; cell_i run.records ];
      [ "records/s"; Tiered.Report.cell_f run.records_per_s ];
      [ "ingest shards"; cell_i run.shards ];
      [ "duplicates dropped"; cell_oi run.dropped_dup ];
      [ "late drops"; cell_i run.late ];
      [ "sequence gaps"; cell_i run.seq_gaps ];
      [ "malformed packets"; cell_i run.malformed ];
      [ "window occupancy"; Tiered.Report.cell_pct run.occupancy ];
      [ "re-tiers"; cell_i s.retiers ];
      [ "warm / unchanged / cold"; Printf.sprintf "%d / %d / %d" s.warm s.unchanged s.cold ];
      [ "cache hits"; cell_i s.cached ];
      [ "fallbacks"; cell_i s.fallbacks ];
      [ "warm-start hit rate"; Tiered.Report.cell_pct s.warm_hit_rate ];
      [ "re-tier p50 (ms)"; cell_of s.p50_ms ];
      [ "re-tier p99 (ms)"; cell_of s.p99_ms ];
      [ "re-tier max (ms)"; cell_of s.max_ms ];
      [ "seg evaluations"; cell_i s.evaluations ];
      [ "wall (s)"; Tiered.Report.cell_f run.wall_s ];
    ]

let json_oi = function None -> "null" | Some v -> string_of_int v
let json_of = function None -> "null" | Some v -> Printf.sprintf "%.4f" v

let to_json s run =
  Printf.sprintf
    {|{"records": %d, "records_per_s": %.1f, "shards": %d, "dropped_dup": %s, "late": %d, "seq_gaps": %d, "malformed": %d, "occupancy": %.4f, "wall_s": %.4f, "retiers": %d, "warm": %d, "cold": %d, "cached": %d, "unchanged": %d, "fallbacks": %d, "evaluations": %d, "warm_hit_rate": %.4f, "p50_retier_ms": %s, "p99_retier_ms": %s, "max_retier_ms": %s}|}
    run.records run.records_per_s run.shards (json_oi run.dropped_dup)
    run.late run.seq_gaps run.malformed run.occupancy run.wall_s s.retiers
    s.warm s.cold s.cached s.unchanged s.fallbacks s.evaluations
    s.warm_hit_rate (json_of s.p50_ms) (json_of s.p99_ms) (json_of s.max_ms)
