type t =
  | Replay of {
      template : Flowgen.Netflow.record array;  (* one day, sorted *)
      days : int;
      mutable day : int;
      mutable pos : int;
    }
  | Seq of { mutable rest : Flowgen.Netflow.record list; length : int }
  | Wire of Flowgen.Netflow.Wire.reader

let sort_by_first records =
  let a = Array.of_list records in
  let n = Array.length a in
  (* Stable order: first_s, then original emission index, so router
     duplicates of the same window arrive in synthesis order and the
     streaming dedup's first-observation-wins choice is deterministic. *)
  let idx = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match
        Int.compare a.(i).Flowgen.Netflow.first_s a.(j).Flowgen.Netflow.first_s
      with
      | 0 -> Int.compare i j
      | c -> c)
    idx;
  Array.map (fun i -> a.(i)) idx

let of_records records =
  Replay { template = sort_by_first records; days = 1; day = 0; pos = 0 }

let of_sequence records = Seq { rest = records; length = List.length records }

let of_workload ?shape ?(days = 1) ~seed w =
  if days < 1 then invalid_arg "Serve.Ingest.of_workload: days < 1";
  let rng = Numerics.Rng.create seed in
  let records =
    Flowgen.Netflow.synthesize ?shape ~rng (Flowgen.Workload.to_ground_truth w)
  in
  Replay { template = sort_by_first records; days; day = 0; pos = 0 }

let of_reader r = Wire r

let total = function
  | Replay { template; days; _ } -> Some (Array.length template * days)
  | Seq { length; _ } -> Some length
  | Wire _ -> None

let wire_counters = function
  | Wire r ->
      Some (Flowgen.Netflow.Wire.seq_gaps r, Flowgen.Netflow.Wire.malformed r)
  | Replay _ | Seq _ -> None

let next = function
  | Replay r ->
      let len = Array.length r.template in
      if r.pos >= len then begin
        r.day <- r.day + 1;
        r.pos <- 0
      end;
      if r.day >= r.days || len = 0 then None
      else begin
        let rec_ = r.template.(r.pos) in
        r.pos <- r.pos + 1;
        if r.day = 0 then Some rec_
        else
          let shift = r.day * Flowgen.Netflow.day_seconds in
          Some
            {
              rec_ with
              first_s = rec_.first_s + shift;
              last_s = rec_.last_s + shift;
            }
      end
  | Seq s -> (
      match s.rest with
      | [] -> None
      | x :: tl ->
          s.rest <- tl;
          Some x)
  | Wire r -> Flowgen.Netflow.Wire.read r
