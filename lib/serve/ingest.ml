type t = {
  template : Flowgen.Netflow.record array;  (* one day, sorted by first_s *)
  days : int;
  mutable day : int;
  mutable pos : int;
}

let sort_by_first records =
  let a = Array.of_list records in
  let n = Array.length a in
  (* Stable order: first_s, then original emission index, so router
     duplicates of the same window arrive in synthesis order and the
     streaming dedup's first-observation-wins choice is deterministic. *)
  let idx = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match
        Int.compare a.(i).Flowgen.Netflow.first_s a.(j).Flowgen.Netflow.first_s
      with
      | 0 -> Int.compare i j
      | c -> c)
    idx;
  Array.map (fun i -> a.(i)) idx

let of_records records =
  { template = sort_by_first records; days = 1; day = 0; pos = 0 }

let of_workload ?shape ?(days = 1) ~seed w =
  if days < 1 then invalid_arg "Serve.Ingest.of_workload: days < 1";
  let rng = Numerics.Rng.create seed in
  let records =
    Flowgen.Netflow.synthesize ?shape ~rng (Flowgen.Workload.to_ground_truth w)
  in
  { template = sort_by_first records; days; day = 0; pos = 0 }

let total t = Array.length t.template * t.days

let next t =
  let len = Array.length t.template in
  if t.pos >= len then begin
    t.day <- t.day + 1;
    t.pos <- 0
  end;
  if t.day >= t.days || len = 0 then None
  else begin
    let r = t.template.(t.pos) in
    t.pos <- t.pos + 1;
    if t.day = 0 then Some r
    else
      let shift = t.day * Flowgen.Netflow.day_seconds in
      Some { r with first_s = r.first_s + shift; last_s = r.last_s + shift }
  end
