(** The serve loop: ingest, shard, dedup, window, re-tier on a cadence.

    Records stream in nondecreasing [first_s] (the {!Ingest} contract)
    onto per-prefix {!Shards} — each shard owns a streaming dedup table
    and a sliding {!Window} ring — and every [every_s] seconds of
    {e stream} time the daemon drains the shards (in parallel when
    given a pool), merges their snapshots deterministically and posts
    re-tiered prices through {!Retier}. Wall time only feeds the stats
    (throughput, re-tier latency) via the injected {!Clock} — stream
    time alone drives behavior, so runs are deterministic under any
    clock, pool, or shard count. *)

type params = { every_s : int  (** Re-tier cadence in stream seconds. *) }

type run_result = {
  r_outcomes : Retier.outcome list;  (** Every re-tier, in order. *)
  r_stats : Stats.summary;
  r_run : Stats.run;
  r_flows : int;  (** Distinct endpoint pairs observed. *)
}

val run :
  ?on_retier:(Window.snapshot -> Retier.outcome -> unit) ->
  clock:Clock.t ->
  ?pool:Engine.Pool.t ->
  shards:Shards.t ->
  retier:Retier.t ->
  params ->
  Ingest.t ->
  run_result
(** Re-tier deadlines sit on the [every_s] grid anchored at the first
    record's [first_s]; a gap spanning several deadlines fires each one
    in turn (catch-up), and one final re-tier always covers the stream
    tail. At every deadline each shard retires dedup keys older than
    the window. [pool] (Domains backend) parallelizes the per-shard
    drains; posted tiers are bitwise-identical with or without it.
    Wire streams contribute their sequence-gap and malformed-packet
    counters to the run record. Raises [Invalid_argument] when
    [every_s < 1]. *)
