(** The serve loop: ingest, dedup, window, re-tier on a cadence.

    Records stream in nondecreasing [first_s] (the {!Ingest} contract)
    through streaming duplicate suppression
    ({!Flowgen.Dedup.Stream}) into the sliding {!Window}; every
    [every_s] seconds of {e stream} time the daemon snapshots the
    window and posts re-tiered prices through {!Retier}. Wall time only
    feeds the stats (throughput, re-tier latency) via the injected
    {!Clock} — stream time alone drives behavior, so runs are
    deterministic under any clock. *)

type params = {
  every_s : int;  (** Re-tier cadence in stream seconds. *)
  dedup : bool;  (** Streaming duplicate suppression (on for NetFlow
                     sources, off when records are already unique). *)
}

type run_result = {
  r_outcomes : Retier.outcome list;  (** Every re-tier, in order. *)
  r_stats : Stats.summary;
  r_run : Stats.run;
  r_flows : int;  (** Distinct endpoint pairs observed. *)
}

val run :
  ?on_retier:(Window.snapshot -> Retier.outcome -> unit) ->
  clock:Clock.t ->
  window:Window.t ->
  retier:Retier.t ->
  params ->
  Ingest.t ->
  run_result
(** Re-tier deadlines sit on the [every_s] grid anchored at the first
    record's [first_s]; a gap spanning several deadlines fires each one
    in turn (catch-up), and one final re-tier always covers the stream
    tail. At every deadline the dedup table retires keys older than the
    window. Raises [Invalid_argument] when [every_s < 1]. *)
