(** Injected time for the streaming service.

    Nothing under [lib/serve] reads the wall clock directly (the D003
    lint confines [Unix.gettimeofday] to the engine); the daemon and the
    stats take a [Clock.t] instead. The CLI and the bench inject real
    time, the tests a hand-advanced manual clock, so every re-tier
    latency and throughput figure is measurable without sleeping. *)

type t

val of_fn : (unit -> float) -> t
(** Wrap a time source returning seconds (monotonicity is the
    caller's business). *)

val now : t -> float

val manual : ?start:float -> unit -> t * (float -> unit)
(** A settable clock for tests: [now] returns whatever the returned
    setter was last called with ([start], default [0.], until then). *)
