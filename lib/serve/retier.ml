module Market = Tiered.Market
module Flow = Tiered.Flow

type flow_meta = {
  m_id : int;
  m_distance_miles : float;
  m_locality : Flow.locality;
  m_on_net : bool;
}

let meta_of_workload (w : Flowgen.Workload.t) =
  let index = Hashtbl.create (List.length w.flows) in
  List.iter
    (fun (f : Flowgen.Workload.flow) ->
      Hashtbl.replace index
        (Flowgen.Ipv4.to_int f.src_addr, Flowgen.Ipv4.to_int f.dst_addr)
        {
          m_id = f.id;
          m_distance_miles = f.distance_miles;
          m_locality = Tiered.Dataset.locality_of f.locality;
          m_on_net = f.on_net;
        })
    w.flows;
  fun src dst ->
    Hashtbl.find_opt index (Flowgen.Ipv4.to_int src, Flowgen.Ipv4.to_int dst)

type params = {
  spec : Market.demand_spec;
  alpha : float;
  p0 : float;
  n_bundles : int;
  cost_model : Tiered.Cost_model.t;
  samples : int;
  cold_every : int;
  use_cache : bool;
}

(* The per-position signature the dirty detection runs on: positions
   are the DP's cost order, so an unchanged prefix of signatures means
   an unchanged prefix of segment values (under CED; see [dirty_from]
   for the logit caveat). The signature keys on demand rather than
   valuation: the valuation is a fixed bijection of demand under the
   frozen calibration, so equality of (cost, demand, id) is equality of
   the DP inputs — and unchanged windows never pay the inversion. *)
type sig_entry = { g_cost : float; g_q : float; g_uid : int }

type solved = { s_cuts : int list; s_prices : float array; s_profit : float }

type calib = {
  gamma : float;
  rel_cost : Flow.t -> float;
  costs : (int, float) Hashtbl.t;
      (* flow id -> gamma * rel_cost, memoized: every cost model prices
         static flow attributes (distance, locality, identity), never
         demand, so the frozen absolute cost is a constant per flow. *)
}

type t = {
  params : params;
  meta_of : Flowgen.Ipv4.t -> Flowgen.Ipv4.t -> flow_meta option;
  cache : solved Engine.Cache.t option;
  mutable calib : calib option;
  mutable meta_memo : flow_meta option option array;
      (* window uid -> oracle answer; window uids are dense and stable,
         so the per-window join is an array probe, not a rehash of
         every endpoint pair. *)
  mutable dp : Numerics.Segdp.state option;
  mutable dp_sig : sig_entry array;  (* signature the retained state solved *)
  mutable last : solved option;  (* priced outcome matching [dp_sig] *)
  mutable solves : int;  (* warm/cold solves, for the cold_every drill *)
}

let create params ~meta_of =
  (match params.spec with
  | Market.Linear _ ->
      invalid_arg "Serve.Retier: Linear demand has no parametric rebuild"
  | Market.Ced | Market.Logit _ -> ());
  if params.n_bundles < 1 then invalid_arg "Serve.Retier: n_bundles < 1";
  if params.samples < 0 then invalid_arg "Serve.Retier: samples < 0";
  if params.cold_every < 0 then invalid_arg "Serve.Retier: cold_every < 0";
  {
    params;
    meta_of;
    cache =
      (if params.use_cache then
         Some (Engine.Cache.create ~schema:"serve-retier-v1" ~name:"serve-retier" ())
       else None);
    calib = None;
    meta_memo = [||];
    dp = None;
    dp_sig = [||];
    last = None;
    solves = 0;
  }

let calibrated t = t.calib <> None

type outcome = {
  o_bin : int;
  o_n_flows : int;
  o_skipped : int;
  o_cuts : int list;
  o_prices : float array;
  o_profit : float;
  o_solve : [ `Warm | `Cold | `Cached | `Unchanged ];
  o_dirty_from : int;
  o_evaluations : int;
  o_fallback : bool;
}

let empty_outcome ~bin ~skipped =
  {
    o_bin = bin;
    o_n_flows = 0;
    o_skipped = skipped;
    o_cuts = [];
    o_prices = [||];
    o_profit = 0.;
    o_solve = `Unchanged;
    o_dirty_from = 0;
    o_evaluations = 0;
    o_fallback = false;
  }

let flow_of_meta m ~mbps =
  Flow.make ~locality:m.m_locality ~on_net:m.m_on_net ~id:m.m_id
    ~demand_mbps:mbps ~distance_miles:m.m_distance_miles ()

let meta_for t (fr : Window.flow_rate) =
  let uid = fr.Window.f_uid in
  let len = Array.length t.meta_memo in
  if uid >= len then begin
    let grown = Array.make (max (2 * len) (uid + 1)) None in
    Array.blit t.meta_memo 0 grown 0 len;
    t.meta_memo <- grown
  end;
  match t.meta_memo.(uid) with
  | Some m -> m
  | None ->
      let m = t.meta_of fr.Window.f_src fr.Window.f_dst in
      t.meta_memo.(uid) <- Some m;
      m

(* Join a snapshot against the metadata oracle. Returns the priceable
   flows' metadata and demands (in snapshot order) and the count of
   rates with no metadata. *)
let join t (snap : Window.snapshot) =
  let skipped = ref 0 in
  let pairs =
    Array.to_list snap.Window.s_flows
    |> List.filter_map (fun (fr : Window.flow_rate) ->
           match meta_for t fr with
           | Some m -> Some (m, fr.Window.f_mbps)
           | None ->
               incr skipped;
               None)
  in
  ( Array.of_list (List.map fst pairs),
    Array.of_list (List.map snd pairs),
    !skipped )

let ensure_calibrated t metas qs =
  match t.calib with
  | Some c -> c
  | None ->
      let flows =
        Array.init (Array.length metas) (fun i ->
            flow_of_meta metas.(i) ~mbps:qs.(i))
      in
      let m0 =
        Market.fit ~spec:t.params.spec ~alpha:t.params.alpha ~p0:t.params.p0
          ~cost_model:t.params.cost_model flows
      in
      let c =
        {
          gamma = m0.Market.gamma;
          rel_cost = Tiered.Cost_model.freeze t.params.cost_model flows;
          costs = Hashtbl.create 4096;
        }
      in
      t.calib <- Some c;
      c

let cost_of calib m ~q =
  match Hashtbl.find_opt calib.costs m.m_id with
  | Some c -> c
  | None ->
      let c = calib.gamma *. calib.rel_cost (flow_of_meta m ~mbps:q) in
      Hashtbl.add calib.costs m.m_id c;
      c

(* The cheap per-window pass: absolute costs off the memo, the sort by
   (cost, id) that makes [Strategy.dp_inputs]'s cost order the identity,
   and the signature. Valuations and the market itself are *not* built
   here — an unchanged window stops after comparing signatures. *)
let inputs_of t metas qs =
  let calib = ensure_calibrated t metas qs in
  let n = Array.length metas in
  let cost = Array.init n (fun i -> cost_of calib metas.(i) ~q:qs.(i)) in
  let perm = Array.init n Fun.id in
  Array.sort
    (fun i j ->
      match Float.compare cost.(i) cost.(j) with
      | 0 -> Int.compare metas.(i).m_id metas.(j).m_id
      | c -> c)
    perm;
  let costs = Array.map (fun i -> cost.(i)) perm in
  let signature =
    Array.init n (fun p ->
        let i = perm.(p) in
        { g_cost = costs.(p); g_q = qs.(i); g_uid = metas.(i).m_id })
  in
  (perm, costs, signature)

(* Rebuild the window's market from the frozen calibration: valuations
   track the demands (per-flow closed form under CED, global inversion
   under logit) over the flows in [inputs_of]'s (cost, id) order. *)
let market_of t metas qs perm costs =
  let { spec; alpha; p0; _ } = t.params in
  let sorted = Array.map (fun i -> flow_of_meta metas.(i) ~mbps:qs.(i)) perm in
  let valuations, k =
    match spec with
    | Market.Ced ->
        ( Array.map
            (fun i ->
              Tiered.Ced.valuation_of_demand ~alpha ~p0 ~q:qs.(i))
            perm,
          None )
    | Market.Logit { s0 } ->
        let fit =
          Tiered.Logit.fit_valuations ~alpha ~p0 ~s0
            ~demands:(Array.map (fun i -> qs.(i)) perm)
        in
        (fit.Tiered.Logit.valuations, Some fit.Tiered.Logit.k)
    | Market.Linear _ -> assert false (* rejected by [create] *)
  in
  Market.of_parameters ~spec ~alpha ~p0 ?k ~valuations ~costs sorted

let sig_equal a b =
  Float.equal a.g_cost b.g_cost
  && Float.equal a.g_q b.g_q
  && Int.equal a.g_uid b.g_uid

(* First changed DP position, [n] when nothing changed. Lengths may
   differ (flow arrivals/departures): the result is then the length of
   the common clean prefix — the index injection the structural warm
   start remaps the retained state through. Logit's segment values
   carry set-wide normalizers (max valuation, min cost) and its global
   demand inversion moves every valuation on any change, so a
   partially-clean prefix cannot be trusted there: the choice collapses
   to all (identical signature) or nothing. *)
let dirty_from t signature =
  let n = Array.length signature in
  let n_old = Array.length t.dp_sig in
  let m = Stdlib.min n_old n in
  let d = ref m in
  (try
     for p = 0 to m - 1 do
       if not (sig_equal t.dp_sig.(p) signature.(p)) then begin
         d := p;
         raise Exit
       end
     done
   with Exit -> ());
  match t.params.spec with
  | Market.Ced -> !d
  | Market.Logit _ -> if n_old = n && !d = n then n else 0
  | Market.Linear _ -> assert false

let priced market (r : Numerics.Segdp.result) =
  let order, _, _ = Tiered.Strategy.dp_inputs market in
  let bundles = Tiered.Bundle.contiguous ~order ~cuts:r.Numerics.Segdp.cuts in
  let outcome = Tiered.Pricing.evaluate market bundles in
  {
    s_cuts = r.Numerics.Segdp.cuts;
    s_prices = outcome.Tiered.Pricing.bundle_prices;
    s_profit = outcome.Tiered.Pricing.profit;
  }

let cache_key t signature =
  let { spec; alpha; p0; n_bundles; cost_model; _ } = t.params in
  ( Market.demand_spec_name spec,
    (match spec with Market.Logit { s0 } -> s0 | _ -> 0.),
    alpha,
    p0,
    n_bundles,
    Tiered.Cost_model.name cost_model,
    Tiered.Cost_model.theta cost_model,
    Array.map (fun g -> (g.g_cost, g.g_q, g.g_uid)) signature )

let retier t (snap : Window.snapshot) =
  let metas, qs, skipped = join t snap in
  let n = Array.length metas in
  if n = 0 then empty_outcome ~bin:snap.Window.s_bin ~skipped
  else begin
    let perm, costs, signature = inputs_of t metas qs in
    let solve = ref `Cached in
    let dirty = ref n in
    let evals = ref 0 in
    let fallback = ref false in
    let do_solve () =
      (* Drill cadence counts {e actual} solves only: unchanged replays
         and cache hits post without solving and must not advance it,
         or the "every Nth solve cold" contract drifts under high
         unchanged rates. [t.solves] is bumped below, after the replay
         check. *)
      let force =
        t.params.cold_every > 0 && (t.solves + 1) mod t.params.cold_every = 0
      in
      let replay =
        (* Signature-identical window and no drill due: the retained
           optimum and its pricing still stand verbatim, so skip the
           market rebuild, the DP replay and the re-pricing outright. *)
        match (t.dp, t.last) with
        | Some st, Some s when Numerics.Segdp.state_n st = n && not force ->
            let d = dirty_from t signature in
            if d = n then begin
              dirty := n;
              Some s
            end
            else begin
              dirty := d;
              None
            end
        | _ -> None
      in
      match replay with
      | Some s ->
          solve := `Unchanged;
          evals := 0;
          fallback := false;
          s
      | None ->
          t.solves <- t.solves + 1;
          let market = market_of t metas qs perm costs in
          let _, seg_value, regions = Tiered.Strategy.dp_inputs market in
          let result, tag =
            match t.dp with
            | Some st ->
                let d = dirty_from t signature in
                dirty := d;
                let same_n = Numerics.Segdp.state_n st = n in
                (* Demand changes can move the clamp boundaries between
                   windows, so the warm solve always refreshes the
                   state's region decomposition. Size changes (flow
                   arrivals/departures) remap the retained state
                   through the clean-prefix injection instead of
                   cold-solving. *)
                let r, how =
                  if same_n then
                    Numerics.Segdp.solve_warm ~samples:t.params.samples
                      ~regions ~force_fallback:force st ~dirty_from:d
                      seg_value
                  else
                    Numerics.Segdp.solve_structural ~samples:t.params.samples
                      ~regions ~force_fallback:force st ~n ~dirty_from:d
                      seg_value
                in
                let tag =
                  match how with
                  | `Warm -> if same_n && d = n then `Unchanged else `Warm
                  | `Cold -> `Cold
                in
                (r, tag)
            | None ->
                dirty := 0;
                let r, st =
                  Numerics.Segdp.solve_with_state ~samples:t.params.samples
                    ~regions ~n ~n_bundles:t.params.n_bundles seg_value
                in
                t.dp <- Some st;
                (r, `Cold)
          in
          solve := tag;
          evals := result.Numerics.Segdp.stats.Numerics.Segdp.evaluations;
          fallback :=
            force
            || result.Numerics.Segdp.stats.Numerics.Segdp.fallback_layers > 0;
          t.dp_sig <- signature;
          let s = priced market result in
          t.last <- Some s;
          s
    in
    let s =
      match t.cache with
      | Some cache ->
          Engine.Cache.find_or_add cache ~key:(cache_key t signature) do_solve
      | None -> do_solve ()
    in
    {
      o_bin = snap.Window.s_bin;
      o_n_flows = n;
      o_skipped = skipped;
      o_cuts = s.s_cuts;
      o_prices = s.s_prices;
      o_profit = s.s_profit;
      o_solve = !solve;
      o_dirty_from = !dirty;
      o_evaluations = !evals;
      o_fallback = !fallback;
    }
  end

let solve_cold t (snap : Window.snapshot) =
  let metas, qs, skipped = join t snap in
  let n = Array.length metas in
  if n = 0 then empty_outcome ~bin:snap.Window.s_bin ~skipped
  else begin
    let perm, costs, _ = inputs_of t metas qs in
    let market = market_of t metas qs perm costs in
    let _, seg_value, regions = Tiered.Strategy.dp_inputs market in
    let r =
      Numerics.Segdp.solve ~samples:t.params.samples ~regions ~n
        ~n_bundles:t.params.n_bundles seg_value
    in
    let s = priced market r in
    {
      o_bin = snap.Window.s_bin;
      o_n_flows = n;
      o_skipped = skipped;
      o_cuts = s.s_cuts;
      o_prices = s.s_prices;
      o_profit = s.s_profit;
      o_solve = `Cold;
      o_dirty_from = 0;
      o_evaluations = r.Numerics.Segdp.stats.Numerics.Segdp.evaluations;
      o_fallback = r.Numerics.Segdp.stats.Numerics.Segdp.fallback_layers > 0;
    }
  end
