type part = {
  p_dedup : Flowgen.Dedup.Stream.t option;
  p_window : Window.t;
  mutable p_pending : Flowgen.Netflow.record list;  (* reverse order *)
  mutable p_count : int;
}

type t = { parts : part array; wp : Window.params }

let create ?(expected = 1024) ~shards ~dedup wp =
  if shards < 1 then invalid_arg "Serve.Shards: shards < 1";
  let per = Stdlib.max 16 (expected / shards) in
  {
    parts =
      Array.init shards (fun _ ->
          {
            p_dedup =
              (if dedup then Some (Flowgen.Dedup.Stream.create ~expected:per ())
               else None);
            p_window = Window.create ~expected:per wp;
            p_pending = [];
            p_count = 0;
          });
    wp;
  }

let shards t = Array.length t.parts
let window_params t = t.wp
let dedup_enabled t = Option.is_some t.parts.(0).p_dedup

(* Stable per-prefix partition: both endpoints' /24 prefixes mixed
   through fixed odd constants. A flow (and every duplicate of it,
   which shares the 5-tuple) lands on one shard for the life of the
   stream, so per-shard dedup state and per-flow ring accumulation see
   exactly the records they would in a single-shard run. *)
let shard_of t r =
  let k = Array.length t.parts in
  if k = 1 then 0
  else
    let s = Flowgen.Ipv4.to_int r.Flowgen.Netflow.src lsr 8 in
    let d = Flowgen.Ipv4.to_int r.Flowgen.Netflow.dst lsr 8 in
    let h = (s * 0x9E3779B1) lxor (d * 0x85EBCA6B) in
    h land max_int mod k

let observe t r =
  let p = t.parts.(shard_of t r) in
  p.p_pending <- r :: p.p_pending;
  p.p_count <- p.p_count + 1

let pending t =
  Array.fold_left (fun acc p -> acc + p.p_count) 0 t.parts

(* Drain one shard's buffered records into its dedup + window, advance
   its ring and retire dedup keys the window can no longer hold, then
   snapshot. Runs on a pool worker; it touches only this shard's
   state. *)
let drain wp part ~bin ~retire_s =
  List.iter
    (fun r ->
      let keep =
        match part.p_dedup with
        | None -> true
        | Some dd -> Flowgen.Dedup.Stream.observe dd r
      in
      if keep then
        ignore
          (Window.observe part.p_window ~src:r.Flowgen.Netflow.src
             ~dst:r.Flowgen.Netflow.dst ~bytes:r.Flowgen.Netflow.bytes
             ~bin:(Window.bin_of_time wp (float_of_int r.Flowgen.Netflow.first_s))))
    (List.rev part.p_pending);
  part.p_pending <- [];
  part.p_count <- 0;
  Window.advance_to part.p_window ~bin;
  (match part.p_dedup with
  | Some dd -> Flowgen.Dedup.Stream.forget_before dd ~first_s:retire_s
  | None -> ());
  Window.snapshot part.p_window

(* Deterministic merge: shard-major, slot order within each shard, each
   local uid injected into the dense global space [uid * k + shard].
   The injection is stable across windows (a flow's shard and local uid
   never change), and per-flow rates are bitwise those of a 1-shard run
   (a flow's records all land on its one shard, in arrival order), so
   downstream — which sorts flows by (cost, id) anyway — sees inputs
   independent of the shard count. *)
let merge t snaps ~bin =
  let k = Array.length t.parts in
  let total =
    Array.fold_left
      (fun acc s -> acc + Array.length s.Window.s_flows)
      0 snaps
  in
  let flows = Array.make total Window.{ f_src = Flowgen.Ipv4.of_int 0; f_dst = Flowgen.Ipv4.of_int 0; f_uid = 0; f_mbps = 0. } in
  let pos = ref 0 in
  let occupancy = ref 0. in
  let late = ref 0 in
  Array.iteri
    (fun shard s ->
      if s.Window.s_occupancy > !occupancy then occupancy := s.Window.s_occupancy;
      late := !late + s.Window.s_late;
      Array.iter
        (fun f ->
          flows.(!pos) <-
            { f with Window.f_uid = (f.Window.f_uid * k) + shard };
          incr pos)
        s.Window.s_flows)
    snaps;
  {
    Window.s_bin = bin;
    s_flows = flows;
    s_occupancy = !occupancy;
    s_late = !late;
  }

let snapshot ?pool t ~bin ~retire_s =
  let k = Array.length t.parts in
  let snaps =
    match pool with
    (* Shard state lives in this process; a Procs or Remote pool would
       drain out-of-process copies and discard the mutations, so only
       the domain backend may parallelize here. *)
    | Some pool when k > 1 && (match Engine.Pool.backend pool with
                              | Engine.Pool.Domains -> true
                              | Engine.Pool.Procs | Engine.Pool.Remote -> false)
      ->
        Engine.Pool.map pool
          (fun i -> drain t.wp t.parts.(i) ~bin ~retire_s)
          (Array.init k Fun.id)
    | _ -> Array.map (fun p -> drain t.wp p ~bin ~retire_s) t.parts
  in
  merge t snaps ~bin

let flow_count t =
  Array.fold_left (fun acc p -> acc + Window.flow_count p.p_window) 0 t.parts

let late t =
  Array.fold_left (fun acc p -> acc + Window.late p.p_window) 0 t.parts

let dropped_dup t =
  if dedup_enabled t then
    Some
      (Array.fold_left
         (fun acc p ->
           match p.p_dedup with
           | Some dd -> acc + Flowgen.Dedup.Stream.dropped dd
           | None -> acc)
         0 t.parts)
  else None
