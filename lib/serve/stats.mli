(** Service counters: throughput, re-tier latency, solve outcomes.

    The daemon feeds one {!observe} per re-tier; {!summary} reduces to
    the figures the acceptance bench pins — records/s, the re-tier
    latency histogram (nearest-rank p50/p99) and the warm-start hit
    rate — renderable as a {!Tiered.Report} table or JSON. Quantities
    that can be absent rather than zero — quantiles of an empty
    histogram, duplicates when dedup is off — are options and render as
    JSON [null], never a misleading [0]. *)

type t

val create : unit -> t

val observe :
  t ->
  solve:[ `Warm | `Cold | `Cached | `Unchanged ] ->
  latency_s:float ->
  evaluations:int ->
  fallback:bool ->
  unit

type summary = {
  retiers : int;
  warm : int;
  cold : int;
  cached : int;
  unchanged : int;
  fallbacks : int;  (** Re-tiers that went through the divergence path
                        (spot-check trip or forced drill). *)
  evaluations : int;  (** Total [seg_value] evaluations. *)
  warm_hit_rate : float;
      (** Solves that reused the retained DP state — [(warm + unchanged)
          / (warm + unchanged + cold)]; [0] before any solve. Cache hits
          are excluded (no solve ran). *)
  p50_ms : float option;  (** [None] before any re-tier. *)
  p99_ms : float option;
  max_ms : float option;
}

val summary : t -> summary

val percentile : float array -> p:float -> float option
(** Nearest-rank percentile of a sorted array ([p] in [\[0, 100\]]).
    [None] on an empty array; a single observation is every quantile of
    itself. Exposed for the tests. *)

type run = {
  records : int;  (** Records ingested (pre-dedup). *)
  dropped_dup : int option;  (** [None] when dedup is disabled. *)
  late : int;
  seq_gaps : int;  (** Wire sequence gaps; [0] for generator streams. *)
  malformed : int;  (** Malformed wire packets/records; likewise. *)
  shards : int;
  occupancy : float;  (** Final window occupancy. *)
  wall_s : float;
  records_per_s : float;
}

val report : summary -> run -> Tiered.Report.t

val to_json : summary -> run -> string
(** One flat JSON object; the schema is documented in README.md
    (BENCH_serve.json embeds it verbatim under ["daemon"]). *)
