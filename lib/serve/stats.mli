(** Service counters: throughput, re-tier latency, solve outcomes.

    The daemon feeds one {!observe} per re-tier; {!summary} reduces to
    the figures the acceptance bench pins — records/s, the re-tier
    latency histogram (nearest-rank p50/p99) and the warm-start hit
    rate — renderable as a {!Tiered.Report} table or JSON. *)

type t

val create : unit -> t

val observe :
  t ->
  solve:[ `Warm | `Cold | `Cached | `Unchanged ] ->
  latency_s:float ->
  evaluations:int ->
  fallback:bool ->
  unit

type summary = {
  retiers : int;
  warm : int;
  cold : int;
  cached : int;
  unchanged : int;
  fallbacks : int;  (** Re-tiers that went through the divergence path
                        (spot-check trip or forced drill). *)
  evaluations : int;  (** Total [seg_value] evaluations. *)
  warm_hit_rate : float;
      (** Solves that reused the retained DP state — [(warm + unchanged)
          / (warm + unchanged + cold)]; [0] before any solve. Cache hits
          are excluded (no solve ran). *)
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
}

val summary : t -> summary

val percentile : float array -> p:float -> float
(** Nearest-rank percentile of a sorted array ([p] in [\[0, 100\]];
    [0.] on an empty array). Exposed for the tests. *)

type run = {
  records : int;  (** Records ingested (pre-dedup). *)
  dropped_dup : int;
  late : int;
  occupancy : float;  (** Final window occupancy. *)
  wall_s : float;
  records_per_s : float;
}

val report : summary -> run -> Tiered.Report.t

val to_json : summary -> run -> string
(** One flat JSON object; the schema is documented in README.md
    (BENCH_serve.json embeds it verbatim under ["daemon"]). *)
