type decay =
  | No_decay
  | Exponential of { half_life_bins : float }
  | Diurnal of { amplitude : float; peak_bin : int }

type params = { bin_s : int; bins : int; decay : decay }

type cell = {
  c_src : Flowgen.Ipv4.t;
  c_dst : Flowgen.Ipv4.t;
  c_uid : int;
  ring : float array;  (* bytes per bin, indexed by [bin mod bins] *)
  mutable c_last : int;  (* the bin [ring] is valid up to (inclusive) *)
}

type t = {
  p : params;
  index : (int * int, cell) Hashtbl.t;
  mutable order : cell list;  (* reverse first-appearance order *)
  mutable count : int;
  mutable cur : int;  (* -1 before any observation *)
  mutable first : int;  (* bin of the first observation; -1 before *)
  mutable late : int;
}

let create ?(expected = 1024) p =
  if p.bin_s < 1 then invalid_arg "Serve.Window: bin_s < 1";
  if p.bins < 1 then invalid_arg "Serve.Window: bins < 1";
  (match p.decay with
  | No_decay -> ()
  | Exponential { half_life_bins } ->
      if not (half_life_bins > 0. && Float.is_finite half_life_bins) then
        invalid_arg "Serve.Window: exponential half-life must be positive"
  | Diurnal { amplitude; _ } ->
      if not (amplitude >= 0. && amplitude <= 1.) then
        invalid_arg "Serve.Window: diurnal amplitude outside [0, 1]");
  {
    p;
    index = Hashtbl.create expected;
    order = [];
    count = 0;
    cur = -1;
    first = -1;
    late = 0;
  }

let params t = t.p

let bin_of_time p time =
  if time < 0. then invalid_arg "Serve.Window.bin_of_time: negative time";
  int_of_float (time /. float_of_int p.bin_s)

(* Positive remainder: OCaml's [mod] takes the dividend's sign, so a
   negative left operand indexes out of bounds. Every ring-index
   computation goes through here. *)
let pmod a m =
  let r = a mod m in
  if r < 0 then r + m else r

(* Ring slots between a cell's last-written bin and [bin] hold bytes
   from bins that have since slid out; zero them before writing. Lazy
   per-cell catch-up keeps [advance_to] O(1) — no traversal of the flow
   table on the hot ingest path. *)
let catch_up ~bins cell ~bin =
  if bin > cell.c_last then begin
    let gap = bin - cell.c_last in
    let steps = if gap > bins then bins else gap in
    for k = 1 to steps do
      cell.ring.(pmod (bin - steps + k) bins) <- 0.
    done;
    cell.c_last <- bin
  end

let advance_to t ~bin = if bin > t.cur then t.cur <- bin

let observe t ~src ~dst ~bytes ~bin =
  if bin < 0 then invalid_arg "Serve.Window.observe: negative bin";
  advance_to t ~bin;
  if t.first < 0 then t.first <- bin;
  if bin <= t.cur - t.p.bins then begin
    t.late <- t.late + 1;
    false
  end
  else begin
    let key = (Flowgen.Ipv4.to_int src, Flowgen.Ipv4.to_int dst) in
    let cell =
      match Hashtbl.find_opt t.index key with
      | Some c -> c
      | None ->
          let c =
            {
              c_src = src;
              c_dst = dst;
              c_uid = t.count;
              ring = Array.make t.p.bins 0.;
              c_last = bin;
            }
          in
          Hashtbl.add t.index key c;
          t.order <- c :: t.order;
          t.count <- t.count + 1;
          c
    in
    catch_up ~bins:t.p.bins cell ~bin;
    cell.ring.(bin mod t.p.bins) <- cell.ring.(bin mod t.p.bins) +. bytes;
    true
  end

let current_bin t = t.cur
let flow_count t = t.count
let late t = t.late

type flow_rate = {
  f_src : Flowgen.Ipv4.t;
  f_dst : Flowgen.Ipv4.t;
  f_uid : int;
  f_mbps : float;
}

type snapshot = {
  s_bin : int;
  s_flows : flow_rate array;
  s_occupancy : float;
  s_late : int;
}

let two_pi = 8. *. atan 1.

(* The unique window bin a ring slot holds: the [b <= cur] congruent to
   [slot] mod [bins] within the window ([mod] of a negative is negative
   in OCaml, hence [pmod]). *)
let bin_of_slot ~bins ~cur slot = cur - pmod (cur - slot) bins

let weight p ~cur ~slot =
  let b = bin_of_slot ~bins:p.bins ~cur slot in
  match p.decay with
  | No_decay -> 1.
  | Exponential { half_life_bins } ->
      0.5 ** (float_of_int (cur - b) /. half_life_bins)
  | Diurnal { amplitude; peak_bin } ->
      1.
      +. amplitude
         *. cos (two_pi *. float_of_int (b - peak_bin) /. float_of_int p.bins)

let snapshot t =
  let bins = t.p.bins in
  let weights = Array.init bins (fun slot -> weight t.p ~cur:t.cur ~slot) in
  (* Normalize by the whole window's weight mass, not just occupied
     bins: a half-full window reads as half the steady-state rate,
     exactly like the batch pipeline averaging over a fixed capture
     window. [s_occupancy] reports the warm-up state. *)
  let denom =
    Numerics.Stats.sum weights *. float_of_int t.p.bin_s *. 1e6
  in
  (* Slots whose bin predates time zero (a window not yet full) carry
     no bytes; zeroing their weight here keeps the per-cell loop a flat
     multiply-accumulate — it runs once per flow per snapshot. *)
  let live =
    Array.init bins (fun slot ->
        if bin_of_slot ~bins ~cur:t.cur slot >= 0 then weights.(slot) else 0.)
  in
  (* Accumulate in ring-slot order, not age order: no-decay and diurnal
     weights are functions of the slot alone, so a window holding the
     same per-bin bytes at a different phase (periodic traffic) sums in
     the same order and produces a bitwise-identical rate — which is
     what lets the re-tier layer recognize it as unchanged. Exponential
     decay is genuinely age-dependent, so there the weight (not the
     summation order) varies per window. *)
  let rate cell =
    catch_up ~bins cell ~bin:t.cur;
    let acc = ref 0. in
    let ring = cell.ring in
    for slot = 0 to bins - 1 do
      acc := !acc +. (ring.(slot) *. live.(slot))
    done;
    !acc *. 8. /. denom
  in
  let flows =
    List.filter_map
      (fun cell ->
        let mbps = rate cell in
        if mbps > 0. then
          Some { f_src = cell.c_src; f_dst = cell.c_dst; f_uid = cell.c_uid; f_mbps = mbps }
        else None)
      (List.rev t.order)
  in
  let occupancy =
    if t.first < 0 then 0.
    else
      let span = t.cur - t.first + 1 in
      float_of_int (if span > bins then bins else span) /. float_of_int bins
  in
  {
    s_bin = t.cur;
    s_flows = Array.of_list flows;
    s_occupancy = occupancy;
    s_late = t.late;
  }
