type params = { every_s : int }

type run_result = {
  r_outcomes : Retier.outcome list;
  r_stats : Stats.summary;
  r_run : Stats.run;
  r_flows : int;
}

let run ?on_retier ~clock ?pool ~shards ~retier params ingest =
  if params.every_s < 1 then invalid_arg "Serve.Daemon: every_s < 1";
  let wp = Shards.window_params shards in
  let span_s = wp.Window.bins * wp.Window.bin_s in
  let stats = Stats.create () in
  let outcomes = ref [] in
  let records = ref 0 in
  let occupancy = ref 0. in
  let t0 = Clock.now clock in
  (* Re-tier covering all stream time < [at]: drain every shard up to
     the bin containing [at - 1] (records at [at] and beyond have not
     been ingested yet), retire dedup keys the window can no longer
     hold, merge and solve. *)
  let retier_at at =
    let bin = Window.bin_of_time wp (float_of_int (at - 1)) in
    let snap = Shards.snapshot ?pool shards ~bin ~retire_s:(at - span_s) in
    occupancy := snap.Window.s_occupancy;
    let t_solve = Clock.now clock in
    let o = Retier.retier retier snap in
    let latency_s = Clock.now clock -. t_solve in
    Stats.observe stats ~solve:o.Retier.o_solve ~latency_s
      ~evaluations:o.Retier.o_evaluations ~fallback:o.Retier.o_fallback;
    outcomes := o :: !outcomes;
    match on_retier with Some f -> f snap o | None -> ()
  in
  let deadline = ref min_int in
  let last_seen = ref min_int in
  let rec pump () =
    match Ingest.next ingest with
    | None -> ()
    | Some r ->
        incr records;
        let first_s = r.Flowgen.Netflow.first_s in
        if !deadline = min_int then deadline := first_s + params.every_s;
        while first_s >= !deadline do
          retier_at !deadline;
          deadline := !deadline + params.every_s
        done;
        (* [max], not assignment: an out-of-order record must not pull
           the tail re-tier's horizon backwards. *)
        if first_s > !last_seen then last_seen := first_s;
        Shards.observe shards r;
        pump ()
  in
  pump ();
  (* Tail: the deadline loop only fires strictly before a record, so the
     last partial interval is still unposted. *)
  if !last_seen <> min_int then retier_at (!last_seen + 1);
  let wall_s = Clock.now clock -. t0 in
  let seq_gaps, malformed =
    match Ingest.wire_counters ingest with Some c -> c | None -> (0, 0)
  in
  let run =
    {
      Stats.records = !records;
      dropped_dup = Shards.dropped_dup shards;
      late = Shards.late shards;
      seq_gaps;
      malformed;
      shards = Shards.shards shards;
      occupancy = !occupancy;
      wall_s;
      records_per_s =
        (if wall_s > 0. then float_of_int !records /. wall_s else 0.);
    }
  in
  {
    r_outcomes = List.rev !outcomes;
    r_stats = Stats.summary stats;
    r_run = run;
    r_flows = Shards.flow_count shards;
  }
