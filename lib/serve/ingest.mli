(** Record streams for the daemon.

    The daemon consumes NetFlow records in nondecreasing [first_s]
    order (the contract {!Flowgen.Dedup.Stream.forget_before} and the
    window's late-drop accounting rely on). {!of_records} sorts a batch
    into that order; {!of_workload} synthesizes one day of records from
    a workload through the same {!Flowgen.Netflow.synthesize} path the
    batch pipeline uses — duplicates at every on-path router included —
    and replays it for [days] days, shifting timestamps by whole days,
    so arbitrarily long runs cost one day of synthesis. {!of_reader}
    pulls binary NetFlow v5/IPFIX packets off a wire stream; the
    reader's bounded buffering makes a stalled solver exert
    backpressure on the channel. *)

type t

val of_records : Flowgen.Netflow.record list -> t
(** Sorts by [first_s] (stable, so router duplicates keep their
    emission order and streaming dedup stays deterministic). *)

val of_sequence : Flowgen.Netflow.record list -> t
(** Yields the records verbatim, in the given order — including orders
    that violate the nondecreasing-[first_s] contract. Out-of-order
    tests use this to pin what the pipeline does with misbehaving
    exporters; everything else should prefer {!of_records}. *)

val of_workload :
  ?shape:Flowgen.Netflow.shape ->
  ?days:int ->
  seed:int ->
  Flowgen.Workload.t ->
  t
(** [days] defaults to [1]. Raises [Invalid_argument] when
    [days < 1]. *)

val of_reader : Flowgen.Netflow.Wire.reader -> t
(** Wire ingest: records decoded on demand from framed NetFlow
    v5/IPFIX packets. Yields whatever order the wire carries. *)

val total : t -> int option
(** Records the stream will yield in all; [None] for wire streams
    (unknown until EOF). *)

val wire_counters : t -> (int * int) option
(** [(seq_gaps, malformed)] so far, for wire streams; [None]
    otherwise. *)

val next : t -> Flowgen.Netflow.record option
