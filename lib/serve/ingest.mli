(** Record streams for the daemon.

    The daemon consumes NetFlow records in nondecreasing [first_s]
    order (the contract {!Flowgen.Dedup.Stream.forget_before} and the
    window's late-drop accounting rely on). {!of_records} sorts a batch
    into that order; {!of_workload} synthesizes one day of records from
    a workload through the same {!Flowgen.Netflow.synthesize} path the
    batch pipeline uses — duplicates at every on-path router included —
    and replays it for [days] days, shifting timestamps by whole days,
    so arbitrarily long runs cost one day of synthesis. *)

type t

val of_records : Flowgen.Netflow.record list -> t
(** Sorts by [first_s] (stable, so router duplicates keep their
    emission order and streaming dedup stays deterministic). *)

val of_workload :
  ?shape:Flowgen.Netflow.shape ->
  ?days:int ->
  seed:int ->
  Flowgen.Workload.t ->
  t
(** [days] defaults to [1]. Raises [Invalid_argument] when
    [days < 1]. *)

val total : t -> int
(** Records the stream will yield in all. *)

val next : t -> Flowgen.Netflow.record option
