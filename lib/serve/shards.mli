(** Sharded ingest: per-prefix partitions of the dedup + window state,
    merged into one deterministic snapshot for the single re-tier
    thread.

    Records are routed by a stable hash of both endpoints' /24
    prefixes, so a flow — and every router duplicate of it, which
    shares the 5-tuple — lives on exactly one shard for the life of
    the stream. Each shard runs its own {!Flowgen.Dedup.Stream} and
    {!Window} ring and sees precisely the records it would in a
    1-shard run, in the same order; {!snapshot} drains all shards
    (in parallel on an {!Engine.Pool} of the Domains backend) and
    merges shard-major, slot order within each shard, injecting local
    uids into the dense global space [uid * shards + shard]. Per-flow
    rates are bitwise those of the 1-shard run and the re-tier layer
    sorts flows by (cost, id), so posted tiers are bitwise-identical
    at any shard count — the bench pins this with a golden leg.

    Records buffer in per-shard pending lists between snapshots (the
    daemon snapshots every [every_s] of stream time), which keeps the
    drain single-writer per shard: the memory high-water mark is one
    re-tier interval of records, not the stream. *)

type t

val create : ?expected:int -> shards:int -> dedup:bool -> Window.params -> t
(** [shards >= 1] partitions ([1] degenerates to the unsharded
    pipeline, byte for byte). [dedup] enables per-shard streaming
    duplicate suppression. Raises [Invalid_argument] when
    [shards < 1]. *)

val shards : t -> int
val window_params : t -> Window.params
val dedup_enabled : t -> bool

val shard_of : t -> Flowgen.Netflow.record -> int
(** The partition a record routes to — pure in the endpoint prefixes. *)

val observe : t -> Flowgen.Netflow.record -> unit
(** Buffer a record on its shard's pending list (O(1); no decode or
    window work until the next {!snapshot}). *)

val pending : t -> int
(** Records buffered and not yet drained. *)

val snapshot :
  ?pool:Engine.Pool.t -> t -> bin:int -> retire_s:int -> Window.snapshot
(** Drain every shard's pending records through its dedup + window,
    advance all rings to [bin], retire dedup keys older than
    [retire_s], and merge the per-shard snapshots deterministically.
    With [pool] (Domains backend; a Procs pool silently falls back to
    serial — worker processes cannot mutate this process's shard
    state) the per-shard drains run in parallel; the merge is
    submission-ordered, so the result is identical either way. *)

val flow_count : t -> int
(** Distinct flows across all shards. *)

val late : t -> int
val dropped_dup : t -> int option
(** [None] when dedup is disabled. *)
