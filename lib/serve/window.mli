(** Sliding-window per-flow demand with configurable decay.

    The streaming service prices off rates observed over a ring of
    [bins] time bins of [bin_s] seconds each. Each (src, dst) endpoint
    pair accumulates bytes into the ring; {!snapshot} turns the ring
    into an Mbps figure per flow by averaging over the whole window
    under a decay weighting:

    - [No_decay]: plain mean rate, the batch {!Flowgen.Demand}
      semantics restricted to the window.
    - [Exponential]: bin aged [a] bins weighs [0.5 ** (a /
      half_life_bins)] — recent traffic dominates.
    - [Diurnal]: bin at absolute index [b] weighs [1 + amplitude * cos
      (2 pi (b - peak_bin) / bins)] — emphasizes the daily peak hours
      when the window spans a day, the shape the paper's §4.1.1 capture
      is implicitly weighted by.

    All per-flow state is cleared lazily (no traversal on advance), and
    every traversal runs in first-appearance order, so snapshots are
    deterministic at any ingest batching. *)

type decay =
  | No_decay
  | Exponential of { half_life_bins : float }
  | Diurnal of { amplitude : float; peak_bin : int }

type params = { bin_s : int; bins : int; decay : decay }

type t

val create : ?expected:int -> params -> t
(** Raises [Invalid_argument] when [bin_s < 1], [bins < 1], an
    exponential half-life is not positive and finite, or a diurnal
    amplitude is outside [\[0, 1\]]. *)

val params : t -> params

val bin_of_time : params -> float -> int
(** The bin containing stream time [t] seconds ([t / bin_s],
    floored; [t] must be non-negative). *)

val observe : t -> src:Flowgen.Ipv4.t -> dst:Flowgen.Ipv4.t -> bytes:float -> bin:int -> bool
(** Accumulate [bytes] into the flow's ring at [bin]. Advances the
    window when [bin] is beyond the current bin. Returns [false] (and
    counts the record as late) when [bin] has already slid out of the
    window; late records are dropped, not partially applied. *)

val advance_to : t -> bin:int -> unit
(** Slide the window forward to [bin] without observing traffic (time
    passing with no records). Never moves backwards. *)

val current_bin : t -> int
(** [-1] before any observation or advance. *)

val flow_count : t -> int
(** Distinct endpoint pairs ever observed. *)

val late : t -> int
(** Late records dropped so far. *)

type flow_rate = {
  f_src : Flowgen.Ipv4.t;
  f_dst : Flowgen.Ipv4.t;
  f_uid : int;  (** First-appearance index; stable across windows. *)
  f_mbps : float;  (** Decay-weighted mean rate over the window. *)
}

type snapshot = {
  s_bin : int;  (** The window's current (inclusive) bin. *)
  s_flows : flow_rate array;
      (** First-appearance order; flows whose window rate is [0] (fully
          decayed or never seen in-window) are omitted. *)
  s_occupancy : float;  (** Bins elapsed since the first observation,
                            as a fraction of the window (capped at 1). *)
  s_late : int;
}

val snapshot : t -> snapshot
