type t = unit -> float

let of_fn f = f
let now t = t ()

let manual ?(start = 0.) () =
  let cur = ref start in
  ((fun () -> !cur), fun s -> cur := s)
