type t = { rules : string list; first_line : int; last_line : int }

let marker = "lint: allow"

(* Textual scan, not a lexer pass: keeping it textual lets the scanner
   run on .mli files and on sources that fail to parse.  To avoid
   tripping on prose that merely *mentions* the marker (rule
   rationales, doc comments, this very module), a marker only counts
   when it sits directly after a comment opener: "(*" (or "(**"),
   optional whitespace, then the marker. *)

let find_sub ~start haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    if i + nl > hl then None
    else if String.sub haystack i nl = needle then Some i
    else go (i + 1)
  in
  go start

(* Does position [p] in [line] sit directly after a comment opener?
   Walk back over whitespace, then over the opener's '*'s, then
   require '('. *)
let after_comment_opener line p =
  let i = ref (p - 1) in
  while !i >= 0 && (line.[!i] = ' ' || line.[!i] = '\t') do
    decr i
  done;
  let stars = ref 0 in
  while !i >= 0 && line.[!i] = '*' do
    incr stars;
    decr i
  done;
  !stars >= 1 && !i >= 0 && line.[!i] = '('

let is_rule_id tok =
  String.length tok >= 2
  && (match tok.[0] with 'A' .. 'Z' -> true | _ -> false)
  && String.for_all
       (function 'A' .. 'Z' | '0' .. '9' -> true | _ -> false)
       tok

(* Split the text after the marker into leading rule ids and the
   remainder.  Ids are separated by commas and/or spaces. *)
let parse_clause text =
  let n = String.length text in
  let rec skip_sep i =
    if i < n && (text.[i] = ' ' || text.[i] = ',' || text.[i] = '\t') then
      skip_sep (i + 1)
    else i
  in
  let token_end i =
    let rec go j =
      if j < n && (match text.[j] with 'A' .. 'Z' | '0' .. '9' -> true | _ -> false)
      then go (j + 1)
      else j
    in
    go i
  in
  let rec ids acc i =
    let i = skip_sep i in
    let j = token_end i in
    let tok = String.sub text i (j - i) in
    if j > i && is_rule_id tok then ids (tok :: acc) j else (List.rev acc, i)
  in
  ids [] 0

(* After the rule ids we demand a separator (em dash, hyphen(s) or
   colon) followed by a non-empty justification. *)
let has_reason text i =
  let n = String.length text in
  let i = ref i in
  while !i < n && (text.[!i] = ' ' || text.[!i] = '\t') do
    incr i
  done;
  let em_dash = "\xe2\x80\x94" in
  let sep_len =
    if !i + 3 <= n && String.sub text !i 3 = em_dash then 3
    else if !i < n && (text.[!i] = '-' || text.[!i] = ':') then begin
      (* swallow runs of hyphens ("--") *)
      let j = ref !i in
      while !j < n && text.[!j] = '-' do
        incr j
      done;
      if !j = !i then 1 else !j - !i
    end
    else 0
  in
  if sep_len = 0 then false
  else begin
    let rest = String.sub text (!i + sep_len) (n - !i - sep_len) in
    (* Trim the comment close and whitespace; anything left is the
       justification. *)
    let rest =
      match find_sub ~start:0 rest "*)" with
      | Some k -> String.sub rest 0 k
      | None -> rest
    in
    String.trim rest <> ""
  end

(* The coverage block below a suppression ends where the *next*
   top-level-ish item starts: a line at the same (or lesser)
   indentation as the covered site's first line that begins with a
   binding keyword.  Deeper-indented lines and closing delimiters
   continue the block, so a multi-line binding needs one marker. *)

let indent_of line =
  let n = String.length line in
  let rec go i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then go (i + 1) else i in
  go 0

let binding_keywords =
  [
    "let"; "and"; "type"; "module"; "exception"; "external"; "open";
    "include"; "val"; "class";
  ]

let starts_binding line =
  let line = String.trim line in
  let n = String.length line in
  let word_end =
    let rec go i =
      if i < n && (match line.[i] with 'a' .. 'z' -> true | _ -> false) then
        go (i + 1)
      else i
    in
    go 0
  in
  List.mem (String.sub line 0 word_end) binding_keywords

let scan ~file contents =
  let lines = String.split_on_char '\n' contents in
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let supps = ref [] and malformed = ref [] in
  Array.iteri
    (fun idx line ->
      match find_sub ~start:0 line marker with
      | Some at when after_comment_opener line at ->
          let lineno = idx + 1 in
          let clause =
            String.sub line
              (at + String.length marker)
              (String.length line - at - String.length marker)
          in
          let rules, after = parse_clause clause in
          (* The comment may span lines; coverage runs through the
             expression/binding that follows the close (see
             [starts_binding] above for where that block ends), so one
             marker excuses a multi-line flagged site.  At minimum the
             single line after the close is covered, as before. *)
          let close =
            let rec find i =
              if i >= n then idx
              else
                match find_sub ~start:0 arr.(i) "*)" with
                | Some _ -> i
                | None -> find (i + 1)
            in
            find idx
          in
          let block_end =
            let base = close + 1 in
            if base >= n || String.trim arr.(base) = "" then base + 1
            else begin
              let ind0 = indent_of arr.(base) in
              let rec extend i =
                if i >= n then i
                else if String.trim arr.(i) = "" then i
                else if indent_of arr.(i) <= ind0 && starts_binding arr.(i)
                then i
                else extend (i + 1)
              in
              (* 0-based one past the last covered line = 1-based last *)
              extend (base + 1)
            end
          in
          let last_line = Stdlib.max (close + 2) block_end in
          if rules = [] || not (has_reason clause after) then
            malformed :=
              Finding.v ~rule:"S001" ~file ~line:lineno ~col:at
                "malformed suppression: expected `lint: allow <RULE>[, \
                 <RULE>] \xe2\x80\x94 justification` right after the comment \
                 opener"
              :: !malformed
          else supps := { rules; first_line = lineno; last_line } :: !supps
      | Some _ | None -> ())
    arr;
  (List.rev !supps, List.rev !malformed)

let covers supps ~rule ~line =
  List.exists
    (fun s ->
      line >= s.first_line && line <= s.last_line
      && List.mem rule s.rules)
    supps
