(** A deliberately tiny JSON layer — just enough for the lint
    baseline and report files, so the analysis library needs nothing
    beyond the compiler distribution (no yojson). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Render with 2-space indentation and a trailing newline, keys in
    the order given — deterministic byte-for-byte. *)

val of_string : string -> (t, string) result
(** Parse a JSON document.  Unsupported corners of the spec
    (scientific floats are accepted; [\uXXXX] escapes decode only the
    ASCII range) are fine for the files this tool writes itself. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
