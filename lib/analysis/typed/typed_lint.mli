(** Driver for the typed pass: load cmts, extract the call graph, run
    the effect fixpoint and the T-rules. *)

type outcome = {
  findings : Analysis.Finding.t list;
      (** T001/T002/T003 plus E002 cmt-load errors, sorted *)
  summaries : (string * Effects.Set.t) list;  (** sorted by node id *)
  units : int;  (** implementation modules analyzed *)
}

val available : root:string -> bool
(** Are there any cmts to read (i.e. has [_build] been populated)? *)

val run : ?config:Rules_typed.config -> root:string -> unit -> outcome

val golden_string : (string * Effects.Set.t) list -> string
(** Deterministic bytes of [lint/effects.golden.json], trailing
    newline included. *)

val dump : outcome -> string
(** Debug rendering: one line per non-pure summary. *)
