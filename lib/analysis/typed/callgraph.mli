(** Fact extraction over typed trees: one node per top-level binding,
    with every resolved ident occurrence, pool-sink submissions and
    module-level mutable definitions.

    Classification (call edge vs. mutable access vs. stdlib effect)
    is deferred to {!Summarize}, which sees the global node and
    mutable sets. *)

type ctx =
  | Plain  (** call position, escape, or unrefined argument *)
  | Write_ctx  (** first argument of a known mutator / setfield target *)
  | Read_ctx  (** first argument of a known reader / deref *)

type occ = {
  o_path : string;
      (** canonical dotted path; bare names are same-unit or local idents *)
  o_ctx : ctx;
  o_guarded : bool;  (** under [Mutex.protect] *)
  o_handled : bool;  (** inside a [try] body *)
  o_line : int;
  o_col : int;
}

type sub_target =
  | Closure of string  (** synthetic node id of an inline closure *)
  | Named of string  (** canonical path of a named function argument *)

type submission = { s_target : sub_target; s_line : int; s_col : int }

type kind =
  | Fn  (** top-level [let] binding *)
  | Init  (** [let () = ...] / [Tstr_eval] module initialization *)
  | Closure_node  (** inline closure submitted to a pool sink *)

type node = {
  n_id : string;
  n_file : string;
  n_kind : kind;
  n_line : int;
  n_col : int;
  mutable n_occs : occ list;
  mutable n_subs : submission list;
}

type mutdef = { m_path : string; m_file : string; m_line : int }

type graph = { nodes : node list; mutables : mutdef list }

val canonical_path : Path.t -> string
(** [Path.name] with the ["Stdlib."] prefix stripped and mangled
    wrapped-library names (["Engine__Pool.map"]) rewritten to display
    form (["Engine.Pool.map"]). *)

val mutable_type_heads : string list
(** Type constructors that make a module-level binding shared mutable
    state: [ref], [Hashtbl.t], [Buffer.t], [Queue.t], [Stack.t]. *)

val extract :
  sinks:string list ->
  safe_type_heads:string list ->
  Cmt_load.unit_info list ->
  graph
(** Walk every unit; [sinks] are the parallel-submission heads
    (e.g. ["Engine.Pool.map"]), [safe_type_heads] type constructors
    exempt from the mutable scan (internally synchronized).  Nodes and
    mutables come back sorted by id/path. *)
