(** The interprocedural T-rules: pool data races (T001), determinism
    taint on cache/serve roots (T002), float [=]/[compare] (T003). *)

type config = {
  pool_sinks : string list;
      (** application heads whose function argument runs on the pool *)
  safe_type_heads : string list;
      (** type constructors exempt from the module-mutable scan *)
  trusted_prefixes : string list;
      (** callees whose Nondet atoms stop at the call boundary *)
  sanitizers : string list;
      (** callees that strip hash-order nondeterminism *)
  mut_whitelist : string list;
      (** mutable paths that are internally synchronized *)
  t002_roots : string list;  (** exact node ids that must be deterministic *)
  t002_root_prefixes : string list;  (** id prefixes, e.g. ["Serve.Retier."] *)
  float_exempt : string list;  (** source prefixes exempt from T003 *)
}

val default : config
(** The repo's policy: [Engine.Pool.map]/[map_list] are the sinks,
    [Engine.]* state is synchronized, [Engine.]*/[Tiered.Runner.]* are
    timing-trusted, [Tbl.sorted_*] sanitize hash order, the
    [Experiment] memo functions and [Serve.Retier] are determinism
    roots, and [lib/numerics] owns its float comparisons. *)

val t001 : Summarize.t -> Callgraph.graph -> Analysis.Finding.t list

val t002 : config -> Summarize.t -> Callgraph.graph -> Analysis.Finding.t list

val t003 : config -> Cmt_load.unit_info list -> Analysis.Finding.t list

val run :
  config ->
  Summarize.t ->
  Callgraph.graph ->
  Cmt_load.unit_info list ->
  Analysis.Finding.t list
(** All three rules, concatenated (T001, T002, then T003). *)
