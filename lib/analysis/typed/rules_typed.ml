(* The interprocedural rules of the typed pass.

   T001  parallel tasks must not touch unsynchronized module state
   T002  cache keys / experiment cells / retier entry points must be
         transitively deterministic
   T003  polymorphic =, <> or compare instantiated at a float type

   T001/T002 read the fixpoint summaries from {!Summarize}; T003 is a
   shallow walk over each typed tree (it needs instantiated types,
   not the call graph). *)

type config = {
  pool_sinks : string list;
      (* application heads whose function argument runs on the pool *)
  safe_type_heads : string list;
      (* type constructors exempt from the module-mutable scan *)
  trusted_prefixes : string list;
      (* callees whose Nondet atoms stop at the call boundary *)
  sanitizers : string list;  (* callees that strip hash-order nondeterminism *)
  mut_whitelist : string list;
      (* mutable paths that are internally synchronized *)
  t002_roots : string list;  (* exact node ids that must be deterministic *)
  t002_root_prefixes : string list;  (* id prefixes, e.g. "Serve.Retier." *)
  float_exempt : string list;  (* source prefixes exempt from T003 *)
}

let default =
  {
    pool_sinks = [ "Engine.Pool.map"; "Engine.Pool.map_list" ];
    safe_type_heads = [ "Mutex.t"; "Atomic.t"; "Engine.Cache.t" ];
    (* "Engine." deliberately spans the whole execution layer, including
       the Engine.Transport scheduler and the Engine.Remote TCP backend:
       their select loops, retry state and CAS traffic are internally
       synchronized, so their Nondet atoms stop at the call boundary. *)
    trusted_prefixes = [ "Engine."; "Tiered.Runner." ];
    sanitizers =
      [
        "Tbl.sorted_bindings"; "Tbl.fold_sorted"; "Tbl.iter_sorted";
        "Tbl.sorted_keys";
      ];
    mut_whitelist = [ "Engine." ];
    t002_roots =
      [
        "Tiered.Experiment.workload"; "Tiered.Experiment.dataset";
        "Tiered.Experiment.market"; "Tiered.Experiment.context";
        "Tiered.Experiment.run_cells";
      ];
    t002_root_prefixes = [ "Serve.Retier." ];
    float_exempt = [ "lib/numerics/" ];
  }

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let render_chain hops =
  String.concat " -> "
    (List.map (fun (id, line) -> Printf.sprintf "%s:%d" id line) hops)

(* --- T001: data races through the pool ------------------------------------ *)

let t001 t (g : Callgraph.graph) =
  let findings = ref [] in
  List.iter
    (fun (n : Callgraph.node) ->
      List.iter
        (fun (s : Callgraph.submission) ->
          let target =
            match s.s_target with
            | Callgraph.Closure id -> Some id
            | Callgraph.Named p -> Summarize.resolve t ~scope:n.n_id p
          in
          match target with
          | None -> ()  (* opaque function value: nothing to look up *)
          | Some id ->
              let sum = Summarize.summary t id in
              let reported_writes = ref [] in
              Effects.Set.iter
                (fun a ->
                  match a with
                  | Effects.Mut_write p ->
                      reported_writes := p :: !reported_writes;
                      findings :=
                        Analysis.Finding.v ~rule:"T001" ~file:n.n_file
                          ~line:s.s_line ~col:s.s_col
                          (Printf.sprintf
                             "task submitted to the pool writes module-level \
                              mutable `%s` without a lock (%s)"
                             p
                             (render_chain (Summarize.chain t id a)))
                        :: !findings
                  | _ -> ())
                sum;
              Effects.Set.iter
                (fun a ->
                  match a with
                  | Effects.Mut_read p
                    when (not (List.mem p !reported_writes))
                         && Summarize.written_unguarded t p ->
                      findings :=
                        Analysis.Finding.v ~rule:"T001" ~file:n.n_file
                          ~line:s.s_line ~col:s.s_col
                          (Printf.sprintf
                             "task submitted to the pool reads module-level \
                              mutable `%s`, which is written elsewhere \
                              without a lock (%s)"
                             p
                             (render_chain (Summarize.chain t id a)))
                        :: !findings
                  | _ -> ())
                sum)
        n.n_subs)
    g.nodes;
  List.rev !findings

(* --- T002: determinism taint ---------------------------------------------- *)

let t002 cfg t (g : Callgraph.graph) =
  let is_root id =
    List.mem id cfg.t002_roots
    || List.exists (fun p -> starts_with p id) cfg.t002_root_prefixes
  in
  let findings = ref [] in
  List.iter
    (fun (n : Callgraph.node) ->
      if is_root n.n_id then
        Effects.Set.iter
          (fun a ->
            if Effects.is_nondet a then
              findings :=
                Analysis.Finding.v ~rule:"T002" ~file:n.n_file ~line:n.n_line
                  ~col:n.n_col
                  (Printf.sprintf
                     "`%s` feeds cache keys or serve decisions but %s (%s)"
                     n.n_id (Effects.describe a)
                     (render_chain (Summarize.chain t n.n_id a)))
                :: !findings)
          (Summarize.summary t n.n_id))
    g.nodes;
  List.rev !findings

(* --- T003: float equality / compare --------------------------------------- *)

let polymorphic_cmp_heads = [ "="; "<>"; "compare" ]

let rec mentions_float fuel (ty : Types.type_expr) =
  fuel > 0
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      Path.same p Predef.path_float
      || List.exists (mentions_float (fuel - 1)) args
  | Types.Ttuple ts -> List.exists (mentions_float (fuel - 1)) ts
  | Types.Tarrow (_, a, b, _) ->
      mentions_float (fuel - 1) a || mentions_float (fuel - 1) b
  | _ -> false

(* Comparing against a bare constant constructor (None, []) only
   inspects the tag — no float payload is ever dereferenced — so
   `opt = None` on a float-carrying option is exempt. *)
let is_constant_construct (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_construct (_, cd, []) -> cd.Types.cstr_arity = 0
  | _ -> false

let t003 cfg (units : Cmt_load.unit_info list) =
  let findings = ref [] in
  List.iter
    (fun (u : Cmt_load.unit_info) ->
      if not (List.exists (fun p -> starts_with p u.ui_source) cfg.float_exempt)
      then begin
        let exempt = Hashtbl.create 8 in
        let visit sub (e : Typedtree.expression) =
          (match e.exp_desc with
          | Texp_apply (head, args) -> (
              match head.exp_desc with
              | Texp_ident (p, _, _)
                when List.mem (Callgraph.canonical_path p)
                       polymorphic_cmp_heads
                     && List.exists
                          (fun (_, a) ->
                            match a with
                            | Some arg -> is_constant_construct arg
                            | None -> false)
                          args ->
                  Hashtbl.replace exempt head.exp_loc ()
              | _ -> ())
          | Texp_ident (p, _, _)
            when List.mem (Callgraph.canonical_path p) polymorphic_cmp_heads
                 && mentions_float 8 e.exp_type
                 && not (Hashtbl.mem exempt e.exp_loc) ->
              let line = e.exp_loc.loc_start.pos_lnum in
              let col =
                e.exp_loc.loc_start.pos_cnum - e.exp_loc.loc_start.pos_bol
              in
              findings :=
                Analysis.Finding.v ~rule:"T003" ~file:u.ui_source ~line ~col
                  (Printf.sprintf
                     "polymorphic `%s` used at a float-involving type; use \
                      an explicit tolerance or Float.compare (floats under \
                      `=` break on nan and on accumulated rounding)"
                     (Callgraph.canonical_path p))
                :: !findings
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e
        in
        let it = { Tast_iterator.default_iterator with expr = visit } in
        it.structure it u.ui_structure
      end)
    units;
  List.rev !findings

let run cfg t (g : Callgraph.graph) (units : Cmt_load.unit_info list) =
  t001 t g @ t002 cfg t g @ t003 cfg units
