(** Classify extracted occurrences and join per-function effect
    summaries over the call graph to a fixpoint. *)

type provenance =
  | Direct of int * int  (** line, col of the occurrence itself *)
  | Via of string * int  (** callee node id, call-site line *)

type t

val run :
  trusted_prefixes:string list ->
  sanitizers:string list ->
  mut_whitelist:string list ->
  Callgraph.graph ->
  t
(** [trusted_prefixes]: callee-id prefixes whose [Nondet_*] atoms do
    not propagate to callers (infrastructure that uses clocks/hash
    order internally but exposes deterministic results).
    [sanitizers]: callee ids that strip [Nondet_hash] (sorted-view
    helpers).  [mut_whitelist]: mutable-path prefixes never turned
    into [Mut_*] atoms (internally synchronized engine state). *)

val summary : t -> string -> Effects.Set.t
(** Fixpoint summary of a node id; empty for unknown ids. *)

val node : t -> string -> Callgraph.node option

val resolve : t -> scope:string -> string -> string option
(** Qualify a possibly-bare occurrence path against the node set,
    searching enclosing scopes of [scope]. *)

val written_unguarded : t -> string -> bool
(** Does any non-init node write this mutable path unguarded? *)

val mutdef : t -> string -> Callgraph.mutdef option

val chain : t -> string -> Effects.atom -> (string * int) list
(** [(node, line)] hops from the queried node to the direct source of
    the atom; empty if the node does not carry the atom. *)

val golden : t -> (string * Effects.Set.t) list
(** All summaries in sorted node-id order — the effects golden. *)
