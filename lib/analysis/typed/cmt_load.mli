(** Loader for the [.cmt] typed trees dune produces for [lib/].

    One {!unit_info} per implementation module; wrapper alias modules
    (generated [.ml-gen] sources) and interface-only cmts are skipped.
    Unreadable cmts surface as [E002] findings instead of aborting the
    pass. *)

type unit_info = {
  ui_modname : string;  (** display module path, e.g. ["Engine.Pool"] *)
  ui_source : string;  (** root-relative source, e.g. ["lib/engine/pool.ml"] *)
  ui_structure : Typedtree.structure;
}

val display_of_modname : string -> string
(** ["Engine__Pool"] -> ["Engine.Pool"]; names without ["__"] pass
    through. *)

val discover : root:string -> string list
(** All [.cmt] files under [root/lib] and [root/_build/default/lib],
    sorted. *)

val load : root:string -> unit_info list * Analysis.Finding.t list
(** Read every discovered cmt.  Units are sorted and de-duplicated by
    module name; the finding list carries [E002] load errors. *)
