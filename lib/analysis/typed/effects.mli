(** The effect-summary lattice of the typed lint pass.

    A per-function summary is a finite set of {!atom}s ordered by
    inclusion — bottom is the pure function, join is set union.
    [Mut_write]/[Mut_read] carry the dotted path of the module-level
    mutable value touched, so the lattice is finite for a given tree
    and the interprocedural fixpoint terminates. *)

type atom =
  | Nondet_clock  (** wall/CPU clock observed: Unix.gettimeofday family *)
  | Nondet_rand  (** ambient randomness: global Random state, self_init *)
  | Nondet_hash  (** hash-bucket traversal order escapes *)
  | Mut_write of string  (** writes the named module-level mutable value *)
  | Mut_read of string  (** reads the named module-level mutable value *)
  | Io  (** talks to a channel, the filesystem or a process *)
  | Raises  (** may raise out of the call (not locally handled) *)

val compare_atom : atom -> atom -> int
(** Total monomorphic order: by atom kind, then payload. *)

module Set : Stdlib.Set.S with type elt = atom

val is_nondet : atom -> bool
(** The three [Nondet_*] atoms — the ones rule T002 forbids. *)

val to_string : atom -> string
(** Stable rendering used in the effects golden ("nondet:clock",
    "write:Engine.Cache.registry", ...). *)

val of_string : string -> atom option
(** Inverse of {!to_string}. *)

val describe : atom -> string
(** Human sentence fragment for finding messages. *)

val golden_json : (string * Set.t) list -> Analysis.Json.t
(** Deterministic JSON for [lint/effects.golden.json]: ids sorted,
    atoms in {!compare_atom} order. *)

val golden_of_json :
  Analysis.Json.t -> ((string * Set.t) list, string) Stdlib.result
(** Parse a golden back; used by the round-trip test. *)
