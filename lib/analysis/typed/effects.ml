(* The effect-summary lattice of the typed lint pass.

   A summary is a finite set of atoms; the lattice is the powerset
   under union (bottom = pure).  [Mut_write]/[Mut_read] atoms carry
   the dotted path of the module-level mutable value they touch, so
   the domain is finite per analyzed tree (one atom per mutable
   definition) and the interprocedural fixpoint terminates. *)

type atom =
  | Nondet_clock  (** wall/CPU clock observed: Unix.gettimeofday family *)
  | Nondet_rand  (** ambient randomness: global Random state, self_init *)
  | Nondet_hash  (** hash-bucket traversal order escapes *)
  | Mut_write of string  (** writes the named module-level mutable value *)
  | Mut_read of string  (** reads the named module-level mutable value *)
  | Io  (** talks to a channel, the filesystem or a process *)
  | Raises  (** may raise out of the call (not locally handled) *)

let atom_rank = function
  | Nondet_clock -> 0
  | Nondet_rand -> 1
  | Nondet_hash -> 2
  | Mut_write _ -> 3
  | Mut_read _ -> 4
  | Io -> 5
  | Raises -> 6

let atom_payload = function
  | Mut_write p | Mut_read p -> p
  | Nondet_clock | Nondet_rand | Nondet_hash | Io | Raises -> ""

let compare_atom a b =
  match Int.compare (atom_rank a) (atom_rank b) with
  | 0 -> String.compare (atom_payload a) (atom_payload b)
  | c -> c

module Set = Stdlib.Set.Make (struct
  type t = atom

  let compare = compare_atom
end)

let is_nondet = function
  | Nondet_clock | Nondet_rand | Nondet_hash -> true
  | Mut_write _ | Mut_read _ | Io | Raises -> false

let to_string = function
  | Nondet_clock -> "nondet:clock"
  | Nondet_rand -> "nondet:rand"
  | Nondet_hash -> "nondet:hash-order"
  | Mut_write p -> "write:" ^ p
  | Mut_read p -> "read:" ^ p
  | Io -> "io"
  | Raises -> "raises"

let of_string s =
  let prefixed p =
    String.length s > String.length p && String.sub s 0 (String.length p) = p
  in
  let payload p = String.sub s (String.length p) (String.length s - String.length p) in
  match s with
  | "nondet:clock" -> Some Nondet_clock
  | "nondet:rand" -> Some Nondet_rand
  | "nondet:hash-order" -> Some Nondet_hash
  | "io" -> Some Io
  | "raises" -> Some Raises
  | _ when prefixed "write:" -> Some (Mut_write (payload "write:"))
  | _ when prefixed "read:" -> Some (Mut_read (payload "read:"))
  | _ -> None

let describe = function
  | Nondet_clock -> "reads the wall/CPU clock"
  | Nondet_rand -> "draws ambient randomness"
  | Nondet_hash -> "leaks hash-bucket traversal order"
  | Mut_write p -> Printf.sprintf "writes module-level mutable `%s`" p
  | Mut_read p -> Printf.sprintf "reads module-level mutable `%s`" p
  | Io -> "performs I/O"
  | Raises -> "may raise"

(* --- effects-golden (de)serialization ------------------------------------ *)

(* The golden is a deterministic JSON object: function ids sorted,
   atoms rendered in [compare_atom] order.  Rendering goes through
   [Analysis.Json] so the bytes are stable across hosts. *)

let golden_json (summaries : (string * Set.t) list) =
  Analysis.Json.Obj
    [
      ("version", Analysis.Json.Int 1);
      ("tool", Analysis.Json.Str "tiered-lint/typed");
      ( "summaries",
        Analysis.Json.Obj
          (summaries
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
          |> List.map (fun (id, set) ->
                 ( id,
                   Analysis.Json.List
                     (Set.elements set
                     |> List.map (fun a -> Analysis.Json.Str (to_string a))) ))
          ) );
    ]

let golden_of_json j =
  match Option.bind (Analysis.Json.member "summaries" j) (function
          | Analysis.Json.Obj fields -> Some fields
          | _ -> None)
  with
  | None -> Error "effects golden: expected an object with a \"summaries\" object"
  | Some fields ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (id, v) :: rest -> (
            match Analysis.Json.to_list v with
            | None -> Error (Printf.sprintf "effects golden: %s: expected a list" id)
            | Some atoms -> (
                let parsed =
                  List.map
                    (fun a ->
                      Option.bind (Analysis.Json.to_str a) of_string)
                    atoms
                in
                if List.exists Option.is_none parsed then
                  Error (Printf.sprintf "effects golden: %s: bad atom" id)
                else
                  match List.filter_map Fun.id parsed with
                  | atoms -> go ((id, Set.of_list atoms) :: acc) rest))
      in
      go [] fields
