(* Occurrence classification and the interprocedural effect fixpoint.

   {!Callgraph.extract} recorded raw facts; here each occurrence
   becomes either a direct effect atom, a call edge, or nothing, and
   summaries are joined over the call graph to a fixpoint.  The
   lattice (sets of {!Effects.atom}) is finite — [Mut_*] payloads are
   bounded by the module-level mutable definitions — so the monotone
   iteration terminates. *)

type provenance =
  | Direct of int * int  (* line, col of the occurrence itself *)
  | Via of string * int  (* callee node id, call-site line *)

type t = {
  node_tbl : (string, Callgraph.node) Hashtbl.t;
  order : string list;  (* node ids, sorted *)
  summaries : (string, Effects.Set.t) Hashtbl.t;
  witness : (string * Effects.atom, provenance) Hashtbl.t;
  written : (string, unit) Hashtbl.t;
      (* mutdef paths with an unguarded write outside module init *)
  mutdefs : (string, Callgraph.mutdef) Hashtbl.t;
}

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- stdlib effect classification ---------------------------------------- *)

let clock_heads =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.times"; "Sys.time"; "Sys.cpu_time" ]

(* Ambient randomness: the global [Random] state.  [Random.State.*]
   is deterministic under an explicit seed — except [make_self_init],
   which reads entropy. *)
let is_rand_head q =
  q = "Random.State.make_self_init"
  || (starts_with "Random." q && not (starts_with "Random.State." q))

let hash_order_heads =
  [
    "Hashtbl.fold"; "Hashtbl.iter"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values"; "Hashtbl.stats";
  ]

let io_heads =
  [
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float"; "prerr_string"; "prerr_endline";
    "prerr_newline"; "read_line"; "open_in"; "open_in_bin"; "open_out";
    "open_out_bin"; "close_in"; "close_out"; "input_line"; "output_string";
    "really_input_string"; "Sys.command"; "Sys.remove"; "Sys.rename";
    "Sys.readdir"; "Sys.mkdir"; "Sys.getenv"; "Sys.getenv_opt";
    "Sys.file_exists"; "Sys.is_directory";
  ]

let io_prefixes = [ "In_channel."; "Out_channel."; "Unix."; "Filename.temp" ]

let raise_heads = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

let stdlib_atoms ~handled q =
  if List.mem q clock_heads then [ Effects.Nondet_clock ]
  else if is_rand_head q then [ Effects.Nondet_rand ]
  else if List.mem q hash_order_heads then [ Effects.Nondet_hash ]
  else if List.mem q raise_heads then
    if handled then [] else [ Effects.Raises ]
  else if List.mem q io_heads || List.exists (fun p -> starts_with p q) io_prefixes
  then [ Effects.Io ]
  else []

(* --- name resolution ------------------------------------------------------ *)

(* Bare idents ([Pident]) are locals, parameters, or same-unit
   top-level values.  A closure node "M.f#closure:12" resolves in the
   scope of "M.f"; then trailing components of the scope are dropped
   until "<scope'>.<name>" names a node or mutable.  A local that
   shadows a module-level name resolves to the module-level one — a
   deliberate over-approximation. *)
let resolve_qualified ~known ~scope path =
  if String.contains path '.' then if known path then Some path else None
  else
    let scope =
      match String.index_opt scope '#' with
      | Some i -> String.sub scope 0 i
      | None -> scope
    in
    let rec up scope =
      let cand = scope ^ "." ^ path in
      if known cand then Some cand
      else
        match String.rindex_opt scope '.' with
        | Some i -> up (String.sub scope 0 i)
        | None -> None
    in
    up scope

(* --- the fixpoint --------------------------------------------------------- *)

type edge = { e_callee : string; e_handled : bool; e_line : int }

let compare_edge a b =
  match String.compare a.e_callee b.e_callee with
  | 0 -> (
      match Bool.compare a.e_handled b.e_handled with
      | 0 -> Int.compare a.e_line b.e_line
      | c -> c)
  | c -> c

let run ~trusted_prefixes ~sanitizers ~mut_whitelist (g : Callgraph.graph) =
  let node_tbl = Hashtbl.create 256 in
  List.iter (fun (n : Callgraph.node) -> Hashtbl.replace node_tbl n.n_id n)
    g.nodes;
  let mutdefs = Hashtbl.create 64 in
  List.iter
    (fun (m : Callgraph.mutdef) -> Hashtbl.replace mutdefs m.m_path m)
    g.mutables;
  let order = List.map (fun (n : Callgraph.node) -> n.n_id) g.nodes in
  let known q = Hashtbl.mem node_tbl q || Hashtbl.mem mutdefs q in
  let whitelisted q = List.exists (fun p -> starts_with p q) mut_whitelist in
  let summaries = Hashtbl.create 256 in
  let witness = Hashtbl.create 256 in
  let written = Hashtbl.create 64 in
  (* pass 1: direct atoms + call edges per node *)
  let edges : (string, edge list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (n : Callgraph.node) ->
      let direct = ref Effects.Set.empty in
      let es = ref [] in
      let add_atom (o : Callgraph.occ) a =
        if not (Effects.Set.mem a !direct) then begin
          direct := Effects.Set.add a !direct;
          Hashtbl.replace witness (n.n_id, a) (Direct (o.o_line, o.o_col))
        end
      in
      List.iter
        (fun (o : Callgraph.occ) ->
          match resolve_qualified ~known ~scope:n.n_id o.o_path with
          | Some q when Hashtbl.mem mutdefs q ->
              if not (whitelisted q || o.o_guarded) then begin
                let atom =
                  match o.o_ctx with
                  | Callgraph.Read_ctx -> Effects.Mut_read q
                  | Callgraph.Write_ctx | Callgraph.Plain ->
                      (* a bare escape may be aliased and written *)
                      Effects.Mut_write q
                in
                (match atom with
                | Effects.Mut_write _ when n.n_kind <> Callgraph.Init ->
                    Hashtbl.replace written q ()
                | _ -> ());
                add_atom o atom
              end
          | Some q when Hashtbl.mem node_tbl q ->
              es :=
                { e_callee = q; e_handled = o.o_handled; e_line = o.o_line }
                :: !es
          | _ ->
              List.iter (add_atom o) (stdlib_atoms ~handled:o.o_handled o.o_path))
        (List.rev n.n_occs);
      (* closure submissions also run: edge to the synthetic node *)
      List.iter
        (fun (s : Callgraph.submission) ->
          match s.s_target with
          | Callgraph.Closure id ->
              es := { e_callee = id; e_handled = false; e_line = s.s_line } :: !es
          | Callgraph.Named _ -> ())
        n.n_subs;
      Hashtbl.replace summaries n.n_id !direct;
      Hashtbl.replace edges n.n_id
        (List.sort_uniq compare_edge (List.rev !es)))
    g.nodes;
  (* pass 2: monotone join to a fixpoint *)
  let mask ~callee ~handled set =
    let set =
      if List.exists (fun p -> starts_with p callee) trusted_prefixes then
        Effects.Set.filter (fun a -> not (Effects.is_nondet a)) set
      else set
    in
    let set =
      if List.mem callee sanitizers then
        Effects.Set.remove Effects.Nondet_hash set
      else set
    in
    if handled then Effects.Set.remove Effects.Raises set else set
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        let cur = Hashtbl.find summaries id in
        let next = ref cur in
        List.iter
          (fun e ->
            let callee_sum =
              match Hashtbl.find_opt summaries e.e_callee with
              | Some s -> s
              | None -> Effects.Set.empty
            in
            let incoming = mask ~callee:e.e_callee ~handled:e.e_handled callee_sum in
            Effects.Set.iter
              (fun a ->
                if not (Effects.Set.mem a !next) then begin
                  next := Effects.Set.add a !next;
                  Hashtbl.replace witness (id, a) (Via (e.e_callee, e.e_line))
                end)
              incoming)
          (Hashtbl.find edges id);
        if not (Effects.Set.equal cur !next) then begin
          Hashtbl.replace summaries id !next;
          changed := true
        end)
      order
  done;
  { node_tbl; order; summaries; witness; written; mutdefs }

let summary t id =
  match Hashtbl.find_opt t.summaries id with
  | Some s -> s
  | None -> Effects.Set.empty

let node t id = Hashtbl.find_opt t.node_tbl id

let resolve t ~scope path =
  resolve_qualified ~known:(Hashtbl.mem t.node_tbl) ~scope path

let written_unguarded t p = Hashtbl.mem t.written p

let mutdef t p = Hashtbl.find_opt t.mutdefs p

(* Reconstruct how [atom] reached [id]: call-site hops, ending at the
   node that produces the atom directly.  Provenances always point at
   a strictly earlier discovery, so this terminates. *)
let chain t id atom =
  let rec go acc id =
    match Hashtbl.find_opt t.witness (id, atom) with
    | None -> List.rev acc
    | Some (Direct (line, _)) -> List.rev ((id, line) :: acc)
    | Some (Via (callee, line)) -> go ((id, line) :: acc) callee
  in
  go [] id

let golden t =
  List.map (fun id -> (id, summary t id)) t.order
