(* Cross-module call-graph extraction from typed trees.

   Extraction is deliberately two-phase: this module only records
   *facts* — one node per top-level binding with every resolved ident
   occurrence it contains (tagged with its syntactic context), plus
   module-level mutable definitions and closures submitted to pool
   sinks.  Classifying an occurrence as a call edge, a mutable-state
   access or a stdlib effect needs the *global* mutable-definition and
   node sets, so it happens later in {!Summarize} once every unit has
   been extracted. *)

type ctx = Plain | Write_ctx | Read_ctx

type occ = {
  o_path : string;
      (* canonical dotted path; may be a bare name for same-unit idents *)
  o_ctx : ctx;
  o_guarded : bool;  (* under Mutex.protect *)
  o_handled : bool;  (* inside a try body *)
  o_line : int;
  o_col : int;
}

type sub_target = Closure of string | Named of string

type submission = { s_target : sub_target; s_line : int; s_col : int }

type kind = Fn | Init | Closure_node

type node = {
  n_id : string;
  n_file : string;
  n_kind : kind;
  n_line : int;
  n_col : int;
  mutable n_occs : occ list;  (* reverse order during extraction *)
  mutable n_subs : submission list;
}

type mutdef = { m_path : string; m_file : string; m_line : int }

type graph = { nodes : node list; mutables : mutdef list }

(* --- path canonicalization ----------------------------------------------- *)

let canonical_path p =
  let raw = Path.name p in
  (* strip the Stdlib prefix and turn mangled wrapped-library names
     ("Engine__Pool.map") into their display form ("Engine.Pool.map") *)
  let raw =
    let pre = "Stdlib." in
    if
      String.length raw > String.length pre
      && String.sub raw 0 (String.length pre) = pre
    then String.sub raw (String.length pre) (String.length raw - String.length pre)
    else raw
  in
  Cmt_load.display_of_modname raw

(* Type constructors under which a module-level binding counts as
   shared mutable state.  Arrays and bytes are deliberately absent:
   the rules target refs, hash tables and buffers (per the rule
   catalog); flat numeric arrays used as read-only tables would drown
   the signal. *)
let mutable_type_heads =
  [ "ref"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t" ]

(* Heads whose first argument is mutated / read.  Used to refine the
   context of that argument's occurrence; every other position keeps
   the conservative [Plain] context. *)
let mutator_heads =
  [
    ":="; "incr"; "decr";
    "Hashtbl.replace"; "Hashtbl.add"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Hashtbl.filter_map_inplace";
    "Buffer.add_string"; "Buffer.add_char"; "Buffer.add_bytes";
    "Buffer.add_substring"; "Buffer.add_buffer"; "Buffer.add_channel";
    "Buffer.clear"; "Buffer.reset"; "Buffer.truncate";
    "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear";
    "Queue.transfer";
    "Stack.push"; "Stack.pop"; "Stack.clear";
  ]

let reader_heads =
  [
    "!";
    "Hashtbl.find"; "Hashtbl.find_opt"; "Hashtbl.find_all"; "Hashtbl.mem";
    "Hashtbl.length"; "Hashtbl.fold"; "Hashtbl.iter"; "Hashtbl.to_seq";
    "Hashtbl.to_seq_keys"; "Hashtbl.to_seq_values"; "Hashtbl.copy";
    "Buffer.contents"; "Buffer.length"; "Buffer.nth";
    "Queue.peek"; "Queue.top"; "Queue.length"; "Queue.is_empty";
    "Queue.iter"; "Queue.fold";
    "Stack.top"; "Stack.length"; "Stack.is_empty";
  ]

let guard_heads = [ "Mutex.protect" ]

(* --- extraction ----------------------------------------------------------- *)

type state = {
  mutable cur : node;
  mutable guarded : bool;
  mutable handled : bool;
  mutable acc : node list;
  sinks : string list;
  file : string;
}

let pos_of (loc : Location.t) =
  (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let add_occ st ~ctx ~loc path =
  let line, col = pos_of loc in
  st.cur.n_occs <-
    {
      o_path = path;
      o_ctx = ctx;
      o_guarded = st.guarded;
      o_handled = st.handled;
      o_line = line;
      o_col = col;
    }
    :: st.cur.n_occs

let new_node st ~kind ~loc id =
  let line, col = pos_of loc in
  let n =
    { n_id = id; n_file = st.file; n_kind = kind; n_line = line; n_col = col;
      n_occs = []; n_subs = [] }
  in
  st.acc <- n :: st.acc;
  n

let head_path (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some (canonical_path p)
  | _ -> None

(* Submitting [fn] to a pool sink: inline closures become synthetic
   nodes so their captured accesses get their own summary; named
   functions are resolved against the node set later. *)
let rec visit_expr st (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> add_occ st ~ctx:Plain ~loc:e.exp_loc (canonical_path p)
  | Texp_apply (head, args) -> (
      let hp = head_path head in
      (match hp with
      | Some h when List.mem h guard_heads ->
          add_occ st ~ctx:Plain ~loc:head.exp_loc h;
          let saved = st.guarded in
          st.guarded <- true;
          List.iter (fun (_, a) -> Option.iter (visit_expr st) a) args;
          st.guarded <- saved
      | Some h when List.mem h st.sinks ->
          add_occ st ~ctx:Plain ~loc:head.exp_loc h;
          List.iter
            (fun (_, a) ->
              match a with
              | None -> ()
              | Some (arg : Typedtree.expression) -> (
                  match arg.exp_desc with
                  | Texp_function _ ->
                      let line, col = pos_of arg.exp_loc in
                      let id =
                        Printf.sprintf "%s#closure:%d" st.cur.n_id line
                      in
                      let closure =
                        new_node st ~kind:Closure_node ~loc:arg.exp_loc id
                      in
                      st.cur.n_subs <-
                        { s_target = Closure id; s_line = line; s_col = col }
                        :: st.cur.n_subs;
                      let saved = st.cur in
                      st.cur <- closure;
                      visit_expr st arg;
                      st.cur <- saved
                  | Texp_ident (p, _, _) ->
                      let line, col = pos_of arg.exp_loc in
                      st.cur.n_subs <-
                        {
                          s_target = Named (canonical_path p);
                          s_line = line;
                          s_col = col;
                        }
                        :: st.cur.n_subs;
                      (* the submitted function also runs: keep the edge *)
                      visit_expr st arg
                  | _ -> visit_expr st arg))
            args
      | _ ->
          let refined =
            match hp with
            | Some h when List.mem h mutator_heads -> Some Write_ctx
            | Some h when List.mem h reader_heads -> Some Read_ctx
            | _ -> None
          in
          visit_expr st head;
          let first_value = ref true in
          List.iter
            (fun (_, a) ->
              match a with
              | None -> ()
              | Some (arg : Typedtree.expression) ->
                  let is_first = !first_value in
                  first_value := false;
                  (match (refined, is_first, arg.exp_desc) with
                  | Some ctx, true, Texp_ident (p, _, _) ->
                      add_occ st ~ctx ~loc:arg.exp_loc (canonical_path p)
                  | _ -> visit_expr st arg))
            args))
  | Texp_setfield (obj, _, _, v) ->
      (match obj.exp_desc with
      | Texp_ident (p, _, _) ->
          add_occ st ~ctx:Write_ctx ~loc:obj.exp_loc (canonical_path p)
      | _ -> visit_expr st obj);
      visit_expr st v
  | Texp_try (body, cases) ->
      let saved = st.handled in
      st.handled <- true;
      visit_expr st body;
      st.handled <- saved;
      List.iter (fun (c : _ Typedtree.case) -> visit_case st c) cases
  | Texp_assert (cond, _) ->
      (* assert false and failed assertions raise *)
      add_occ st ~ctx:Plain ~loc:e.exp_loc "raise";
      visit_expr st cond
  | _ -> fallback_iter st e

and visit_case : type k. state -> k Typedtree.case -> unit =
 fun st c ->
  Option.iter (visit_expr st) c.c_guard;
  visit_expr st c.c_rhs

(* Everything without bespoke handling walks through the default
   iterator, re-entering [visit_expr] at each sub-expression. *)
and fallback_iter st e =
  let sub =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ e' -> visit_expr st e');
    }
  in
  Tast_iterator.default_iterator.expr sub e

(* --- module-level mutables ------------------------------------------------ *)

let type_head (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (canonical_path p)
  | _ -> None

let is_mutable_type ~safe_type_heads (ty : Types.type_expr) =
  match type_head ty with
  | Some h ->
      List.mem h mutable_type_heads && not (List.mem h safe_type_heads)
  | None -> false

(* --- structure walk ------------------------------------------------------- *)

let rec collect_pat_vars (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_var (_, name) -> [ (name.txt, p.pat_type, p.pat_loc) ]
  | Tpat_alias (inner, _, name) ->
      (name.txt, p.pat_type, p.pat_loc) :: collect_pat_vars inner
  | Tpat_tuple ps -> List.concat_map collect_pat_vars ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map collect_pat_vars ps
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p) -> collect_pat_vars p) fields
  | _ -> []

let extract_unit ~sinks ~safe_type_heads (u : Cmt_load.unit_info) =
  let st =
    {
      cur =
        { n_id = "<toplevel>"; n_file = u.ui_source; n_kind = Init; n_line = 1;
          n_col = 0; n_occs = []; n_subs = [] };
      guarded = false;
      handled = false;
      acc = [];
      sinks;
      file = u.ui_source;
    }
  in
  let mutables = ref [] in
  let rec walk_structure prefix (str : Typedtree.structure) =
    List.iter (walk_item prefix) str.str_items
  and walk_item prefix (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            match collect_pat_vars vb.vb_pat with
            | [] ->
                (* [let () = ...] and friends: module initialization *)
                let line, _ = pos_of vb.vb_loc in
                let id = Printf.sprintf "%s.(init:%d)" prefix line in
                let n = new_node st ~kind:Init ~loc:vb.vb_loc id in
                let saved = st.cur in
                st.cur <- n;
                visit_expr st vb.vb_expr;
                st.cur <- saved
            | vars ->
                List.iter
                  (fun (name, ty, loc) ->
                    if is_mutable_type ~safe_type_heads ty then
                      mutables :=
                        {
                          m_path = prefix ^ "." ^ name;
                          m_file = u.ui_source;
                          m_line = fst (pos_of loc);
                        }
                        :: !mutables)
                  vars;
                let name, _, _ = List.hd vars in
                let id = prefix ^ "." ^ name in
                let n = new_node st ~kind:Fn ~loc:vb.vb_loc id in
                let saved = st.cur in
                st.cur <- n;
                visit_expr st vb.vb_expr;
                st.cur <- saved)
          vbs
    | Tstr_module mb -> walk_module prefix mb
    | Tstr_recmodule mbs -> List.iter (walk_module prefix) mbs
    | Tstr_eval (e, _) ->
        let line, _ = pos_of item.str_loc in
        let id = Printf.sprintf "%s.(init:%d)" prefix line in
        let n = new_node st ~kind:Init ~loc:item.str_loc id in
        let saved = st.cur in
        st.cur <- n;
        visit_expr st e;
        st.cur <- saved
    | _ -> ()
  and walk_module prefix (mb : Typedtree.module_binding) =
    let sub =
      match mb.mb_id with
      | Some id -> prefix ^ "." ^ Ident.name id
      | None -> prefix
    in
    walk_module_expr sub mb.mb_expr
  and walk_module_expr prefix (me : Typedtree.module_expr) =
    match me.mod_desc with
    | Tmod_structure str -> walk_structure prefix str
    | Tmod_constraint (inner, _, _, _) -> walk_module_expr prefix inner
    | Tmod_functor (_, inner) -> walk_module_expr prefix inner
    | _ -> ()
  in
  walk_structure u.ui_modname u.ui_structure;
  (List.rev st.acc, List.rev !mutables)

let extract ~sinks ~safe_type_heads units =
  let nodes = ref [] and mutables = ref [] in
  List.iter
    (fun u ->
      let ns, ms = extract_unit ~sinks ~safe_type_heads u in
      nodes := !nodes @ ns;
      mutables := !mutables @ ms)
    units;
  {
    nodes = List.sort (fun a b -> String.compare a.n_id b.n_id) !nodes;
    mutables =
      List.sort (fun a b -> String.compare a.m_path b.m_path) !mutables;
  }
