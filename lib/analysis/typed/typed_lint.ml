(* Driver for the typed pass: cmts -> facts -> fixpoint -> T-rules.

   Findings are plain {!Analysis.Finding.t}s, so the textual
   pipeline's suppression/baseline/reporting machinery applies to
   them unchanged. *)

type outcome = {
  findings : Analysis.Finding.t list;
      (* T001/T002/T003 plus E002 cmt-load errors, sorted *)
  summaries : (string * Effects.Set.t) list;  (* sorted by node id *)
  units : int;  (* implementation modules analyzed *)
}

let available ~root = Cmt_load.discover ~root <> []

let run ?(config = Rules_typed.default) ~root () =
  let units, load_errors = Cmt_load.load ~root in
  let graph =
    Callgraph.extract ~sinks:config.Rules_typed.pool_sinks
      ~safe_type_heads:config.Rules_typed.safe_type_heads units
  in
  let t =
    Summarize.run ~trusted_prefixes:config.Rules_typed.trusted_prefixes
      ~sanitizers:config.Rules_typed.sanitizers
      ~mut_whitelist:config.Rules_typed.mut_whitelist graph
  in
  let findings =
    List.sort Analysis.Finding.compare
      (load_errors @ Rules_typed.run config t graph units)
  in
  { findings; summaries = Summarize.golden t; units = List.length units }

let golden_string summaries =
  Analysis.Json.to_string (Effects.golden_json summaries) ^ "\n"

(* Debug rendering for `tiered-lint --typed-dump`: every summary on
   one line, pure nodes elided. *)
let dump outcome =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "%d units, %d summaries\n" outcome.units
    (List.length outcome.summaries);
  List.iter
    (fun (id, set) ->
      if not (Effects.Set.is_empty set) then
        Printf.bprintf buf "%s: %s\n" id
          (String.concat ", "
             (List.map Effects.to_string (Effects.Set.elements set))))
    outcome.summaries;
  Buffer.contents buf
