(* Ingestion of the `.cmt` typed trees dune already produces.

   Dune compiles every library module with `-bin-annot`, leaving one
   cmt per implementation under
   `_build/default/lib/<dir>/.<lib>.objs/byte/<lib>__<Mod>.cmt` (the
   wrapper alias module has no `__` and a `.ml-gen` source; it is
   skipped).  The loader works both from the repo root (artifacts
   under `_build/default/lib`) and from inside a dune action (cwd is
   the build context root, artifacts directly under `lib`). *)

type unit_info = {
  ui_modname : string;  (** display module path, e.g. ["Engine.Pool"] *)
  ui_source : string;  (** root-relative source, e.g. ["lib/engine/pool.ml"] *)
  ui_structure : Typedtree.structure;
}

(* "Engine__Pool" -> "Engine.Pool"; plain "Tbl" stays. *)
let display_of_modname m =
  let buf = Buffer.create (String.length m) in
  let n = String.length m in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && m.[!i] = '_' && m.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf m.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let search_dirs ~root =
  [ Filename.concat root "lib"; Filename.concat (Filename.concat root "_build") (Filename.concat "default" "lib") ]

let discover ~root =
  let out = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | names ->
        Array.sort String.compare names;
        Array.iter
          (fun name ->
            let path = Filename.concat dir name in
            if Sys.is_directory path then walk path
            else if Filename.check_suffix name ".cmt" then out := path :: !out)
          names
  in
  List.iter walk (search_dirs ~root);
  List.sort String.compare !out

(* Source paths inside cmts are as passed to the compiler — relative
   to the build context root, i.e. already root-relative
   ("lib/engine/pool.ml").  Guard against absolute or _build-prefixed
   spellings anyway. *)
let normalize_source src =
  let strip_prefix p s =
    if
      String.length s > String.length p
      && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  let src =
    match strip_prefix "_build/default/" src with Some s -> s | None -> src
  in
  match String.index_opt src '/' with
  | Some _ when String.length src > 4 && String.sub src 0 4 = "lib/" -> Some src
  | _ -> (
      (* absolute path: cut at the last "lib/" segment *)
      let rec find_from i acc =
        match
          if i + 4 <= String.length src then
            if String.sub src i 4 = "lib/" then Some i else None
          else None
        with
        | Some at -> find_from (i + 1) (Some at)
        | None -> if i + 4 > String.length src then acc else find_from (i + 1) acc
      in
      match find_from 0 None with
      | Some at -> Some (String.sub src at (String.length src - at))
      | None -> None)

let load ~root =
  let errors = ref [] in
  let seen = Hashtbl.create 64 in
  let units = ref [] in
  List.iter
    (fun path ->
      match Cmt_format.read_cmt path with
      | exception exn ->
          errors :=
            Analysis.Finding.v ~rule:"E002" ~file:path ~line:1 ~col:0
              (Printf.sprintf "cmt does not load: %s" (Printexc.to_string exn))
            :: !errors
      | cmt -> (
          match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
          | Cmt_format.Implementation str, Some src
            when Filename.check_suffix src ".ml" -> (
              match normalize_source src with
              | Some source when not (Hashtbl.mem seen cmt.Cmt_format.cmt_modname)
                ->
                  Hashtbl.add seen cmt.Cmt_format.cmt_modname ();
                  units :=
                    {
                      ui_modname = display_of_modname cmt.Cmt_format.cmt_modname;
                      ui_source = source;
                      ui_structure = str;
                    }
                    :: !units
              | _ -> ())
          | _ -> ()))
    (discover ~root);
  ( List.sort (fun a b -> String.compare a.ui_modname b.ui_modname) !units,
    List.rev !errors )
