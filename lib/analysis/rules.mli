(** The project-specific rule catalog for [tiered-lint].

    Determinism rules (D…) protect the engine's headline guarantee —
    byte-identical experiment output at any jobs count and backend;
    hygiene rules (H…) keep the failure modes that already bit us
    (stray stdout corrupting the Proc result pipe, unflagged Marshal)
    from recurring.  Rules are scoped by path: most apply only under
    [lib/], with explicit whitelists for the engine's timing and
    process-control sites. *)

type meta = {
  id : string;
  title : string;
  rationale : string;
}

val catalog : meta list
(** Every rule the checker can emit, including the scanner's own
    S001 (malformed suppression) and E001 (unparseable source). *)

val known : string -> bool
(** Is this a rule id from the catalog? *)

val check_structure : file:string -> Parsetree.structure -> Finding.t list
(** Run all AST rules over one implementation.  [file] must be the
    path relative to the repo root with '/' separators — rule scoping
    (lib/-only rules, engine whitelists) keys off it. *)

val missing_interfaces : files:string list -> Finding.t list
(** Rule H003: every [lib/] module must have a paired [.mli].  [files]
    is the full relative-path list of one scan. *)
