let count status reported =
  List.length (List.filter (fun (_, s) -> s = status) reported)

let text ~reported ~stale =
  let buf = Buffer.create 256 in
  List.iter
    (fun ((f : Finding.t), status) ->
      match (status : Finding.status) with
      | Finding.Active ->
          Buffer.add_string buf (Finding.to_string f);
          Buffer.add_char buf '\n'
      | Finding.Suppressed | Finding.Baselined -> ())
    reported;
  List.iter
    (fun (e : Baseline.entry) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s:%d: stale baseline entry for %s \xe2\x80\x94 the finding no \
            longer fires; remove it (make lint-baseline)\n"
           e.Baseline.file e.Baseline.line e.Baseline.rule))
    stale;
  let active = count Finding.Active reported in
  Buffer.add_string buf
    (Printf.sprintf
       "tiered-lint: %d active finding%s, %d suppressed, %d baselined, %d \
        stale baseline entr%s\n"
       active
       (if active = 1 then "" else "s")
       (count Finding.Suppressed reported)
       (count Finding.Baselined reported)
       (List.length stale)
       (if List.length stale = 1 then "y" else "ies"));
  Buffer.contents buf

let json ~reported ~stale =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("tool", Json.Str "tiered-lint");
      ( "findings",
        Json.List
          (List.map
             (fun ((f : Finding.t), status) ->
               Json.Obj
                 [
                   ("rule", Json.Str f.Finding.rule);
                   ("file", Json.Str f.Finding.file);
                   ("line", Json.Int f.Finding.line);
                   ("col", Json.Int f.Finding.col);
                   ("message", Json.Str f.Finding.message);
                   ("status", Json.Str (Finding.status_to_string status));
                 ])
             reported) );
      ( "stale_baseline",
        Json.List
          (List.map
             (fun (e : Baseline.entry) ->
               Json.Obj
                 [
                   ("rule", Json.Str e.Baseline.rule);
                   ("file", Json.Str e.Baseline.file);
                   ("line", Json.Int e.Baseline.line);
                 ])
             stale) );
      ( "summary",
        Json.Obj
          [
            ("active", Json.Int (count Finding.Active reported));
            ("suppressed", Json.Int (count Finding.Suppressed reported));
            ("baselined", Json.Int (count Finding.Baselined reported));
            ("stale_baseline", Json.Int (List.length stale));
          ] );
    ]
