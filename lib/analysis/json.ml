type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- rendering ----------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string t =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make n ' ') in
  let rec go n = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | Str s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (n + 2);
            go (n + 2) item)
          items;
        Buffer.add_char buf '\n';
        indent n;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (n + 2);
            escape_string buf k;
            Buffer.add_string buf ": ";
            go (n + 2) v)
          fields;
        Buffer.add_char buf '\n';
        indent n;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= len then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'u' ->
              if !pos + 4 > len then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad \\u escape");
              go ()
          | _ -> fail "unknown escape")
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors ----------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
