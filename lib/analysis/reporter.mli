(** Render lint results. Pure: returns strings/JSON, never prints —
    the analysis library itself lives under [lib/] and obeys D001. *)

val text :
  reported:(Finding.t * Finding.status) list ->
  stale:Baseline.entry list ->
  string
(** Human-readable report: one [file:line:col: [rule] message] line
    per active finding, stale-baseline warnings, and a one-line
    summary. *)

val json :
  reported:(Finding.t * Finding.status) list ->
  stale:Baseline.entry list ->
  Json.t
(** Machine-readable report:
    {v
    { "version": 1, "tool": "tiered-lint",
      "findings": [ {"rule","file","line","col","message","status"} ],
      "stale_baseline": [ {"rule","file","line"} ],
      "summary": {"active","suppressed","baselined","stale_baseline"} }
    v} *)
