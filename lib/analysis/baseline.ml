type entry = { rule : string; file : string; line : int }
type t = entry list

let empty = []

let entry_of_finding (f : Finding.t) =
  { rule = f.Finding.rule; file = f.Finding.file; line = f.Finding.line }

let compare_entry a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
  | c -> c

let of_findings findings =
  findings |> List.map entry_of_finding |> List.sort_uniq compare_entry

let matches e (f : Finding.t) =
  e.rule = f.Finding.rule && e.file = f.Finding.file && e.line = f.Finding.line

let mem t f = List.exists (fun e -> matches e f) t
let stale t findings =
  List.filter (fun e -> not (List.exists (matches e) findings)) t

let to_json t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ( "entries",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("rule", Json.Str e.rule);
                   ("file", Json.Str e.file);
                   ("line", Json.Int e.line);
                 ])
             t) );
    ]

let entry_of_json j =
  match
    ( Option.bind (Json.member "rule" j) Json.to_str,
      Option.bind (Json.member "file" j) Json.to_str,
      Option.bind (Json.member "line" j) Json.to_int )
  with
  | Some rule, Some file, Some line -> Ok { rule; file; line }
  | _ -> Error "baseline entry needs string rule, string file, int line"

let of_json j =
  match Option.bind (Json.member "entries" j) Json.to_list with
  | None -> Error "baseline: expected an object with an \"entries\" array"
  | Some entries ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest -> (
            match entry_of_json e with
            | Ok entry -> go (entry :: acc) rest
            | Error _ as err -> err)
      in
      go [] entries

let load path =
  if not (Sys.file_exists path) then Ok empty
  else
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string contents with
    | Ok j -> of_json j
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)

let save path t =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string (to_json t)))
