(** The [tiered-lint] driver: discover sources, parse them with
    compiler-libs, run the {!Rules} catalog, honor inline
    {!Suppress}ions, then classify what is left against the
    {!Baseline}. *)

type outcome = {
  reported : (Finding.t * Finding.status) list;
      (** every finding, sorted by (file, line, col, rule) *)
  stale : Baseline.entry list;
      (** baseline entries whose finding no longer fires *)
}

val scan_files : root:string -> dirs:string list -> string list
(** All [.ml]/[.mli] files under [root/dir] for each dir, as sorted
    '/'-separated paths relative to [root].  [_build], [.git],
    [_cache] and [_cas] subtrees are skipped. *)

val check_source :
  file:string -> string -> (Finding.t * Finding.status) list
(** Parse one source from memory and run the AST rules plus the
    suppression scanner.  [file] is the relative path used for rule
    scoping; no baseline and no cross-file rules (H003) here. *)

val run_sources :
  ?baseline:Baseline.t ->
  ?extra:Finding.t list ->
  (string * string) list ->
  outcome
(** Full pipeline over in-memory [(file, contents)] pairs: per-file
    rules, H003 over the whole set, baseline classification.  [extra]
    carries findings from other engines (the typed pass); they get
    the same suppression and baseline treatment as textual ones. *)

val run :
  ?baseline:Baseline.t ->
  ?extra:Finding.t list ->
  root:string ->
  dirs:string list ->
  unit ->
  outcome
(** [run_sources] over [scan_files]. *)

val active : outcome -> Finding.t list
(** The findings that should fail the build. *)
