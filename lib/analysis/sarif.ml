(* Minimal SARIF 2.1.0 rendering, enough for code-scanning uploads:
   one run, the rule catalog as driver metadata, one result per
   finding.  Suppressed/baselined findings are carried with a SARIF
   suppression object instead of being dropped, so the dashboard and
   the text report agree on totals. *)

let result_of ((f : Finding.t), (status : Finding.status)) =
  let level =
    match status with Finding.Active -> "error" | _ -> "note"
  in
  let base =
    [
      ("ruleId", Json.Str f.Finding.rule);
      ("level", Json.Str level);
      ("message", Json.Obj [ ("text", Json.Str f.Finding.message) ]);
      ( "locations",
        Json.List
          [
            Json.Obj
              [
                ( "physicalLocation",
                  Json.Obj
                    [
                      ( "artifactLocation",
                        Json.Obj [ ("uri", Json.Str f.Finding.file) ] );
                      ( "region",
                        Json.Obj
                          [
                            ("startLine", Json.Int f.Finding.line);
                            ("startColumn", Json.Int (f.Finding.col + 1));
                          ] );
                    ] );
              ];
          ] );
    ]
  in
  let suppression =
    match status with
    | Finding.Active -> []
    | Finding.Suppressed ->
        [ ("suppressions", Json.List [ Json.Obj [ ("kind", Json.Str "inSource") ] ]) ]
    | Finding.Baselined ->
        [ ("suppressions", Json.List [ Json.Obj [ ("kind", Json.Str "external") ] ]) ]
  in
  Json.Obj (base @ suppression)

let render ~reported =
  let rules =
    List.map
      (fun (m : Rules.meta) ->
        Json.Obj
          [
            ("id", Json.Str m.Rules.id);
            ( "shortDescription",
              Json.Obj [ ("text", Json.Str m.Rules.title) ] );
            ( "fullDescription",
              Json.Obj [ ("text", Json.Str m.Rules.rationale) ] );
          ])
      Rules.catalog
  in
  Json.Obj
    [
      ("$schema", Json.Str "https://json.schemastore.org/sarif-2.1.0.json");
      ("version", Json.Str "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.Str "tiered-lint");
                            ("rules", Json.List rules);
                          ] );
                    ] );
                ("results", Json.List (List.map result_of reported));
              ];
          ] );
    ]
