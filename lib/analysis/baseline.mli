(** The grandfathered-findings baseline ([lint/baseline.json]).

    A finding matching an entry by (rule, file, line) is reported as
    [Baselined] and does not fail the build.  The file is meant to be
    empty in steady state — it exists so a new rule can land before
    every historical violation is fixed, and so the burn-down is
    reviewable in diffs. *)

type entry = { rule : string; file : string; line : int }

type t = entry list

val empty : t

val of_findings : Finding.t list -> t
(** Deduplicated, sorted entries for the given findings. *)

val mem : t -> Finding.t -> bool

val stale : t -> Finding.t list -> entry list
(** Entries matching none of the findings: fixed violations whose
    baseline line should now be deleted. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val load : string -> (t, string) result
(** Read a baseline file.  A missing file is an empty baseline. *)

val save : string -> t -> unit
