type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type status = Active | Suppressed | Baselined

let v ~rule ~file ~line ~col message = { rule; file; line; col; message }

let of_location ~rule ~file (loc : Location.t) message =
  let pos = loc.Location.loc_start in
  {
    rule;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message;
  }

let compare a b =
  Stdlib.compare
    (a.file, a.line, a.col, a.rule, a.message)
    (b.file, b.line, b.col, b.rule, b.message)

let status_to_string = function
  | Active -> "active"
  | Suppressed -> "suppressed"
  | Baselined -> "baselined"

let to_string t =
  Printf.sprintf "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.message
