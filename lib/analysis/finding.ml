type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

type status = Active | Suppressed | Baselined

let v ~rule ~file ~line ~col message = { rule; file; line; col; message }

let of_location ~rule ~file (loc : Location.t) message =
  let pos = loc.Location.loc_start in
  {
    rule;
    file;
    line = pos.Lexing.pos_lnum;
    col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    message;
  }

(* Monomorphic lexicographic chain — same order as the old tuple
   [Stdlib.compare]; rule D005 keeps bare [compare] out of lib/. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.rule b.rule with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let status_to_string = function
  | Active -> "active"
  | Suppressed -> "suppressed"
  | Baselined -> "baselined"

let to_string t =
  Printf.sprintf "%s:%d:%d: [%s] %s" t.file t.line t.col t.rule t.message
