type outcome = {
  reported : (Finding.t * Finding.status) list;
  stale : Baseline.entry list;
}

(* --- file discovery ------------------------------------------------------- *)

let skip_dir name =
  match name with
  | "_build" | ".git" | "_cache" | "_cas" | "_opam" -> true
  | _ -> false

let is_source name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

let scan_files ~root ~dirs =
  let out = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    match Sys.readdir abs with
    | exception Sys_error _ -> ()
    | names ->
        Array.sort String.compare names;
        Array.iter
          (fun name ->
            let rel' = rel ^ "/" ^ name in
            let abs' = Filename.concat root rel' in
            match Sys.is_directory abs' with
            | true -> if not (skip_dir name) then walk rel'
            | false -> if is_source name then out := rel' :: !out
            | exception Sys_error _ -> ())
          names
  in
  List.iter
    (fun dir ->
      let dir =
        (* normalize "./lib" and "lib/" to "lib" *)
        let dir =
          if String.length dir > 2 && String.sub dir 0 2 = "./" then
            String.sub dir 2 (String.length dir - 2)
          else dir
        in
        if Filename.check_suffix dir "/" then Filename.chop_suffix dir "/"
        else dir
      in
      walk dir)
    dirs;
  List.sort_uniq String.compare !out

(* --- parsing -------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type parsed =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature
  | Broken of Finding.t

let parse ~file contents =
  let lexbuf = Lexing.from_string contents in
  Location.init lexbuf file;
  let intf = Filename.check_suffix file ".mli" in
  match
    if intf then Signature (Parse.interface lexbuf)
    else Structure (Parse.implementation lexbuf)
  with
  | parsed -> parsed
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Broken
        (Finding.of_location ~rule:"E001" ~file loc "source does not parse")
  | exception exn ->
      Broken
        (Finding.v ~rule:"E001" ~file ~line:1 ~col:0
           (Printf.sprintf "source does not parse: %s" (Printexc.to_string exn)))

(* --- per-file check ------------------------------------------------------- *)

let check_source ~file contents =
  let raw =
    match parse ~file contents with
    | Structure str -> Rules.check_structure ~file str
    | Signature _ -> []
    | Broken f -> [ f ]
  in
  let supps, malformed = Suppress.scan ~file contents in
  let classify (f : Finding.t) =
    if
      f.Finding.rule <> "S001"
      && Suppress.covers supps ~rule:f.Finding.rule ~line:f.Finding.line
    then (f, Finding.Suppressed)
    else (f, Finding.Active)
  in
  List.map classify (raw @ malformed)
  |> List.sort (fun (a, _) (b, _) -> Finding.compare a b)

(* --- whole-tree run ------------------------------------------------------- *)

let run_sources ?(baseline = Baseline.empty) ?(extra = []) sources =
  let per_file =
    List.concat_map (fun (file, contents) -> check_source ~file contents) sources
  in
  let tree =
    Rules.missing_interfaces ~files:(List.map fst sources)
    |> List.map (fun f -> (f, Finding.Active))
  in
  (* Findings from other engines (the typed pass) honor the same
     inline suppressions as the textual rules; suppressions are
     re-scanned per distinct file so extras need not come from the
     scanned source set. *)
  let extra_classified =
    let supps_for =
      let cache = Hashtbl.create 8 in
      fun file ->
        match Hashtbl.find_opt cache file with
        | Some s -> s
        | None ->
            let s =
              match List.assoc_opt file sources with
              | Some contents -> fst (Suppress.scan ~file contents)
              | None -> (
                  match read_file file with
                  | contents -> fst (Suppress.scan ~file contents)
                  | exception Sys_error _ -> [])
            in
            Hashtbl.add cache file s;
            s
    in
    List.map
      (fun (f : Finding.t) ->
        if
          Suppress.covers (supps_for f.Finding.file) ~rule:f.Finding.rule
            ~line:f.Finding.line
        then (f, Finding.Suppressed)
        else (f, Finding.Active))
      extra
  in
  let all = per_file @ tree @ extra_classified in
  let reported =
    List.map
      (fun (f, status) ->
        match (status : Finding.status) with
        | Finding.Active when Baseline.mem baseline f -> (f, Finding.Baselined)
        | _ -> (f, status))
      all
    |> List.sort (fun (a, _) (b, _) -> Finding.compare a b)
  in
  let stale = Baseline.stale baseline (List.map fst all) in
  { reported; stale }

let run ?baseline ?extra ~root ~dirs () =
  let files = scan_files ~root ~dirs in
  let sources =
    List.map (fun file -> (file, read_file (Filename.concat root file))) files
  in
  run_sources ?baseline ?extra sources

let active outcome =
  List.filter_map
    (fun (f, status) -> if status = Finding.Active then Some f else None)
    outcome.reported
