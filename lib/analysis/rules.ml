type meta = { id : string; title : string; rationale : string }

let catalog =
  [
    {
      id = "D001";
      title = "no stdout writes in lib/";
      rationale =
        "In a subprocess worker stdout IS the Engine.Proc result pipe; a \
         stray print corrupts the length-prefixed protocol (the resync \
         marker in lib/engine/proc.ml exists because exactly this \
         happened).  Library code renders to buffers/formatters handed in \
         by the caller; only bin/ and bench/ own stdout.";
    };
    {
      id = "D002";
      title = "no raw Hashtbl.iter/Hashtbl.fold in lib/";
      rationale =
        "Hash-bucket traversal order is a function of the hash seed and \
         insertion history, not of the keys; if it reaches a report, grid \
         or cache-accounting path it breaks the golden suite's \
         byte-identity across jobs counts.  Route traversals through \
         Tbl.sorted_bindings / Tbl.fold_sorted / Tbl.iter_sorted instead.";
    };
    {
      id = "D003";
      title = "wall-clock and ambient randomness confined to the engine";
      rationale =
        "Unix.gettimeofday / Unix.time / Sys.time / Random.self_init anywhere outside \
         the engine's metrics plumbing (lib/engine/*, lib/core/runner.ml) \
         would let timing or seed state leak into experiment output.  \
         Model code draws randomness from an explicitly-seeded \
         Numerics.Rng handed to it.";
    };
    {
      id = "D004";
      title = "no physical equality in lib/";
      rationale =
        "== / != observe sharing, which depends on cache hits, \
         marshalling round-trips and backend choice (a procs worker never \
         shares memory with the parent).  Semantics must not change with \
         the execution plan; structural equality or an explicit mutable \
         token is always available.";
    };
    {
      id = "D005";
      title = "no bare polymorphic compare in lib/";
      rationale =
        "Stdlib.compare walks the runtime representation: on \
         float-bearing keys its NaN/-0. ordering is representational \
         rather than the IEEE semantics the surrounding arithmetic \
         assumes, it costs a C call per comparison on hot sort paths, \
         and it raises on functional values that later sneak into a \
         key.  The check is untyped and therefore flags every bare \
         `compare` in lib/ \xe2\x80\x94 spell out Float.compare / Int.compare / \
         String.compare or a typed comparator (Tbl's deliberately \
         polymorphic default carries the one blessed suppression).";
    };
    {
      id = "H001";
      title = "no exit in lib/ outside the Engine.Proc worker entry";
      rationale =
        "Library code must report failure by raising so the pool can \
         contain, retry and attribute it; calling exit tears down the \
         whole process, skips at_exit-registered flushes and kills \
         sibling domains mid-task.  Only the worker entry in \
         lib/engine/proc.ml legitimately terminates the process.";
    };
    {
      id = "H002";
      title = "Marshal.to_* requires a literal flags list at the call site";
      rationale =
        "Whether Closures (task thunks over the Proc pipe) or not \
         (cache keys must hash structurally) is a load-bearing decision; \
         an opaque flags variable hides it from review.";
    };
    {
      id = "H003";
      title = "every lib/ module has a paired .mli";
      rationale =
        "Interfaces are where determinism contracts live; a module \
         without one silently exports its internals and the unused-value \
         warnings (32/34) lose their teeth.";
    };
    {
      id = "S001";
      title = "malformed lint suppression";
      rationale =
        "A suppression comment must name the rule(s) and carry a \
         justification after a dash (`lint: allow D003 \xe2\x80\x94 reason`, \
         right after the comment opener).  One that does not parse \
         suppresses nothing, silently \xe2\x80\x94 so it is itself a finding.";
    };
    {
      id = "E001";
      title = "source file does not parse";
      rationale =
        "An unparseable file cannot be checked, so it cannot be assumed \
         clean.";
    };
    {
      id = "T001";
      title = "pool tasks must not touch unsynchronized module state";
      rationale =
        "A closure handed to Engine.Pool.map runs on another domain; if \
         anything it can reach (transitively, through the call graph) \
         writes a module-level ref/Hashtbl/Buffer without a Mutex, two \
         cells race and the result depends on the schedule.  Engine-owned \
         state is internally locked and whitelisted; everything else \
         needs Mutex.protect or a redesign that returns data instead of \
         mutating.";
    };
    {
      id = "T002";
      title = "cache keys and serve decisions must be deterministic";
      rationale =
        "Anything reachable from the Experiment memo functions or the \
         Serve.Retier entry points feeds cache keys, goldens or live \
         re-tier decisions; if a clock read, ambient randomness or \
         hash-bucket order sneaks in anywhere down the call chain, cache \
         hits stop being replays and goldens drift by machine.  The typed \
         pass walks the summaries, so a helper three calls deep is caught \
         at the root.";
    };
    {
      id = "T003";
      title = "no polymorphic =/compare at float types outside lib/numerics";
      rationale =
        "Float equality is almost never what model code means: nan <> \
         nan, -0. = 0., and two mathematically-equal folds differ in the \
         last ulp.  Comparisons instantiated at a float-involving type \
         (typed check, so partial applications and Array.sort compare \
         count) belong in lib/numerics behind an explicit tolerance.";
    };
    {
      id = "E002";
      title = "cmt artifact does not load";
      rationale =
        "The typed pass reads the .cmt files dune produces; one that \
         fails to load (version skew, truncation) silently shrinks the \
         call graph, so it is reported rather than skipped.";
    };
  ]

let known id = List.exists (fun m -> m.id = id) catalog

(* --- path scoping --------------------------------------------------------- *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let in_lib file = has_prefix ~prefix:"lib/" file

(* D003: the engine owns wall-clock (task timing, worker timeouts) and
   the Runner books per-cell wall times. *)
let timing_whitelisted file =
  has_prefix ~prefix:"lib/engine/" file || file = "lib/core/runner.ml"

(* H001 / D001-stdout: the worker entry point must terminate the
   process and re-plumb stdout; everything else in lib/ may not. *)
let worker_entry file =
  file = "lib/engine/proc.ml" || file = "lib/engine/remote.ml"

(* --- ident classification ------------------------------------------------- *)

let canonical lid =
  match Longident.flatten lid with
  | exception _ -> ""
  | parts -> (
      match String.concat "." parts with
      | s when has_prefix ~prefix:"Stdlib." s ->
          String.sub s 7 (String.length s - 7)
      | s -> s)

let d001_idents =
  [
    "print_char";
    "print_string";
    "print_bytes";
    "print_int";
    "print_float";
    "print_endline";
    "print_newline";
    "Printf.printf";
    "Format.printf";
    "Format.print_string";
    "Format.print_int";
    "Format.print_float";
    "Format.print_char";
    "Format.print_bool";
    "Format.print_newline";
    "Format.print_space";
    "Format.print_cut";
    "Format.print_flush";
    "Format.std_formatter";
    "stdout";
    "Unix.stdout";
  ]

let d002_idents = [ "Hashtbl.iter"; "Hashtbl.fold" ]
let d003_idents =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.times";
    "Sys.time";
    "Sys.cpu_time";
    "Random.self_init";
    "Random.State.make_self_init";
  ]
let d004_idents = [ "=="; "!=" ]

(* D005: [canonical] already folds [Stdlib.compare] to [compare], so one
   name covers both spellings; qualified comparators (Float.compare,
   Finding.compare, ...) canonicalize to their qualified names and pass. *)
let d005_idents = [ "compare" ]
let h001_idents = [ "exit"; "Unix._exit" ]

let marshal_idents =
  [ "Marshal.to_string"; "Marshal.to_channel"; "Marshal.to_bytes"; "Marshal.to_buffer" ]

let is_marshal name = List.mem name marshal_idents

(* A syntactic list literal: [] or a :: chain written with brackets.
   Both parse to Pexp_construct. *)
let rec is_list_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Lident "[]"; _ }, None) -> true
  | Pexp_construct
      ({ txt = Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ _; tl ]; _ })
    ->
      is_list_literal tl
  | _ -> false

(* --- the single AST pass -------------------------------------------------- *)

let check_structure ~file str =
  let findings = ref [] in
  let add ~rule loc message =
    findings := Finding.of_location ~rule ~file loc message :: !findings
  in
  let lib = in_lib file in
  (* Marshal idents already validated as part of an enclosing
     application; keyed by location so the bare-ident visit under the
     default iterator does not re-flag them. *)
  let marshal_seen : (Location.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let visit_ident loc name =
    if lib && List.mem name d001_idents then
      add ~rule:"D001" loc
        (Printf.sprintf
           "`%s` writes to stdout \xe2\x80\x94 in a Proc worker stdout is the \
            result pipe; render through a caller-supplied formatter instead"
           name);
    if lib && List.mem name d002_idents then
      add ~rule:"D002" loc
        (Printf.sprintf
           "raw `%s` traverses in hash-bucket order \xe2\x80\x94 use \
            Tbl.sorted_bindings / fold_sorted / iter_sorted so traversal \
            order cannot leak into output"
           name);
    if lib && (not (timing_whitelisted file)) && List.mem name d003_idents then
      add ~rule:"D003" loc
        (Printf.sprintf
           "`%s` outside the engine timing whitelist (lib/engine/*, \
            lib/core/runner.ml) \xe2\x80\x94 model code takes an explicit \
            Numerics.Rng / clock from its caller"
           name);
    if lib && List.mem name d004_idents then
      add ~rule:"D004" loc
        (Printf.sprintf
           "physical equality `%s` observes sharing, which varies with \
            cache hits and backend \xe2\x80\x94 use structural equality or an \
            explicit token"
           name);
    if lib && List.mem name d005_idents then
      add ~rule:"D005" loc
        (Printf.sprintf
           "bare polymorphic `%s` \xe2\x80\x94 representational ordering on \
            float-bearing keys and a C call per comparison; use \
            Float.compare / Int.compare / String.compare or a typed \
            comparator"
           name);
    if lib && (not (worker_entry file)) && List.mem name h001_idents then
      add ~rule:"H001" loc
        (Printf.sprintf
           "`%s` in library code tears down the whole process \xe2\x80\x94 raise \
            and let Engine.Pool contain and attribute the failure"
           name);
    if is_marshal name && not (Hashtbl.mem marshal_seen loc) then
      add ~rule:"H002" loc
        (Printf.sprintf
           "`%s` passed around without a literal flags list at the call \
            site \xe2\x80\x94 write the flags ([] or [Marshal.Closures]) where \
            the value is marshalled"
           name)
  in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
        let name = canonical txt in
        if is_marshal name then begin
          Hashtbl.replace marshal_seen loc ();
          if not (List.exists (fun (_, a) -> is_list_literal a) args) then
            add ~rule:"H002" loc
              (Printf.sprintf
                 "`%s` without an explicit flags list at the call site \
                  \xe2\x80\x94 write [] or [Marshal.Closures] literally"
                 name)
        end
    | Pexp_ident { txt; loc } -> visit_ident loc (canonical txt)
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let iterator = { Ast_iterator.default_iterator with expr } in
  iterator.structure iterator str;
  List.rev !findings

(* --- H003: paired interfaces ---------------------------------------------- *)

let missing_interfaces ~files =
  let mem f = List.mem f files in
  files
  |> List.filter_map (fun f ->
         if
           in_lib f
           && Filename.check_suffix f ".ml"
           && not (mem (f ^ "i"))
         then
           Some
             (Finding.v ~rule:"H003" ~file:f ~line:1 ~col:0
                "lib/ module without a paired .mli \xe2\x80\x94 determinism \
                 contracts live in interfaces")
         else None)
