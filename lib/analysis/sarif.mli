(** Minimal SARIF 2.1.0 rendering of a lint run, for code-scanning
    uploads.  Active findings are [error]-level results; suppressed
    and baselined ones are carried with a SARIF suppression object so
    totals match the text report. *)

val render : reported:(Finding.t * Finding.status) list -> Json.t
