(** Inline lint suppressions.

    A comment of the form

    {v (* lint: allow D003 — reason the rule does not apply here *) v}

    silences the named rule(s) on the comment's own line(s) and
    through the expression/binding that immediately follows — read
    textually as the contiguous block of non-blank lines below the
    comment close, so one marker covers a multi-line flagged site.  A
    blank line ends the coverage; at minimum the single line after the
    close is covered, so the comment sits directly above (or at the
    end of) the offending code.  Several rules may be listed,
    separated by commas or spaces.  The justification after the dash
    is mandatory: a suppression without a reason is itself reported
    (rule S001) and suppresses nothing. *)

type t = {
  rules : string list;  (** rule ids this suppression covers *)
  first_line : int;  (** line the [lint: allow] marker is on (1-based) *)
  last_line : int;
      (** last covered line: the end of the contiguous non-blank block
          after the comment close (at least one line past the close) *)
}

val scan : file:string -> string -> t list * Finding.t list
(** [scan ~file contents] returns the well-formed suppressions plus
    S001 findings for malformed ones ([lint: allow] markers missing
    rule ids or a justification). *)

val covers : t list -> rule:string -> line:int -> bool
(** Is a finding of [rule] on [line] silenced by one of the scanned
    suppressions? *)
