(** Inline lint suppressions.

    A comment of the form

    {v (* lint: allow D003 — reason the rule does not apply here *) v}

    silences the named rule(s) on the comment's own line(s) and on the
    first line after the comment closes — i.e. put the comment
    directly above (or at the end of) the offending line.  Several
    rules may be listed, separated by commas or spaces.  The
    justification after the dash is mandatory: a suppression without a
    reason is itself reported (rule S001) and suppresses nothing. *)

type t = {
  rules : string list;  (** rule ids this suppression covers *)
  first_line : int;  (** line the [lint: allow] marker is on (1-based) *)
  last_line : int;  (** last covered line: one past the comment close *)
}

val scan : file:string -> string -> t list * Finding.t list
(** [scan ~file contents] returns the well-formed suppressions plus
    S001 findings for malformed ones ([lint: allow] markers missing
    rule ids or a justification). *)

val covers : t list -> rule:string -> line:int -> bool
(** Is a finding of [rule] on [line] silenced by one of the scanned
    suppressions? *)
