(** A single lint diagnostic: rule id + location + message. *)

type t = {
  rule : string;  (** e.g. ["D001"] *)
  file : string;  (** path relative to the repo root, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based column of the offending token *)
  message : string;
}

(** How a finding is classified after suppressions and the baseline
    have been applied.  Only [Active] findings fail the build. *)
type status =
  | Active  (** unbaselined, unsuppressed: fails [make lint] *)
  | Suppressed  (** covered by an inline [lint: allow] comment *)
  | Baselined  (** grandfathered in [lint/baseline.json] *)

val v : rule:string -> file:string -> line:int -> col:int -> string -> t

val of_location : rule:string -> file:string -> Location.t -> string -> t
(** Build a finding from a compiler-libs source location (start
    position). *)

val compare : t -> t -> int
(** Order by (file, line, col, rule, message) so reports are stable. *)

val status_to_string : status -> string
(** ["active"] / ["suppressed"] / ["baselined"] — the JSON encoding. *)

val to_string : t -> string
(** [file:line:col: [rule] message] — the text-reporter line. *)
