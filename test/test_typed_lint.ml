(* The typed lint engine against compiled fixtures: each T-rule gets
   a small module set compiled with `ocamlc -bin-annot` into a temp
   root, then the real cmt pipeline (load -> extract -> fixpoint ->
   rules) runs over it.  Pure pieces (modname display, golden
   round-trip) need no compiler. *)

module TL = Analysis_typed.Typed_lint
module RT = Analysis_typed.Rules_typed
module E = Analysis_typed.Effects

let ocamlc_available =
  lazy (Sys.command "ocamlc -version > /dev/null 2>&1" = 0)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Build a temp root with lib/<name>.ml fixtures compiled in the given
   order; returns the root.  Raises on compile failure (fixtures are
   ours, a failure is a test bug). *)
let compile_fixture mods =
  let root = Filename.temp_file "typed-lint" ".d" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Sys.mkdir (Filename.concat root "lib") 0o755;
  List.iter
    (fun (name, src) ->
      write_file
        (Filename.concat root (Filename.concat "lib" (name ^ ".ml")))
        src)
    mods;
  let cmd =
    Printf.sprintf "cd %s && ocamlc -bin-annot -I lib -c %s > ocamlc.log 2>&1"
      (Filename.quote root)
      (String.concat " " (List.map (fun (n, _) -> "lib/" ^ n ^ ".ml") mods))
  in
  if Sys.command cmd <> 0 then
    Alcotest.failf "fixture does not compile (see %s/ocamlc.log)" root;
  root

let cleanup root = ignore (Sys.command ("rm -rf " ^ Filename.quote root))

let with_fixture mods f =
  if not (Lazy.force ocamlc_available) then
    print_endline "  [skipped: no ocamlc on PATH]"
  else begin
    let root = compile_fixture mods in
    Fun.protect ~finally:(fun () -> cleanup root) (fun () -> f root)
  end

(* A pool lookalike so fixtures need no real engine: the test config
   points the sink list at Pool.map. *)
let pool_mod = ("pool", "let map f xs = Array.map f xs\n")

let fixture_config =
  {
    RT.default with
    RT.pool_sinks = [ "Pool.map" ];
    RT.trusted_prefixes = [];
    RT.sanitizers = [];
    RT.mut_whitelist = [ "Wl." ];
    RT.t002_roots = [ "Cachekey.key" ];
    RT.t002_root_prefixes = [];
  }

let rules_of outcome =
  List.map (fun (f : Analysis.Finding.t) -> f.Analysis.Finding.rule)
    outcome.TL.findings

(* --- T001 ----------------------------------------------------------------- *)

let t001_racy_capture () =
  with_fixture
    [
      pool_mod;
      ( "racy",
        String.concat "\n"
          [
            "let table : (int, int) Hashtbl.t = Hashtbl.create 8";
            "let bump i = Hashtbl.replace table i i";
            "let run xs = Pool.map (fun i -> bump i) xs";
            "";
          ] );
    ]
    (fun root ->
      let o = TL.run ~config:fixture_config ~root () in
      match
        List.filter
          (fun (f : Analysis.Finding.t) -> f.Analysis.Finding.rule = "T001")
          o.TL.findings
      with
      | [ f ] ->
          Alcotest.(check string) "file" "lib/racy.ml" f.Analysis.Finding.file;
          Alcotest.(check int) "line of the submission" 3
            f.Analysis.Finding.line;
          Alcotest.(check bool) "message names the mutable" true
            (let msg = f.Analysis.Finding.message in
             let needle = "Racy.table" in
             let n = String.length needle and m = String.length msg in
             let rec has i =
               i + n <= m && (String.sub msg i n = needle || has (i + 1))
             in
             has 0)
      | other -> Alcotest.failf "expected exactly one T001, got %d"
                   (List.length other))

let t001_mutex_guarded () =
  with_fixture
    [
      pool_mod;
      ( "guarded",
        String.concat "\n"
          [
            "let table : (int, int) Hashtbl.t = Hashtbl.create 8";
            "let m = Mutex.create ()";
            "let bump i = Mutex.protect m (fun () -> Hashtbl.replace table i i)";
            "let run xs = Pool.map (fun i -> bump i) xs";
            "";
          ] );
    ]
    (fun root ->
      let o = TL.run ~config:fixture_config ~root () in
      Alcotest.(check (list string))
        "mutex-protected access passes" []
        (List.filter (fun r -> r = "T001") (rules_of o)))

let t001_whitelist () =
  with_fixture
    [
      pool_mod;
      ( "wl",
        String.concat "\n"
          [
            "let table : (int, int) Hashtbl.t = Hashtbl.create 8";
            "let bump i = Hashtbl.replace table i i";
            "let run xs = Pool.map (fun i -> bump i) xs";
            "";
          ] );
    ]
    (fun root ->
      (* same shape as the racy fixture, but Wl. is whitelisted *)
      let o = TL.run ~config:fixture_config ~root () in
      Alcotest.(check (list string))
        "whitelisted module state passes" []
        (List.filter (fun r -> r = "T001") (rules_of o)))

let t001_init_only_read () =
  with_fixture
    [
      pool_mod;
      ( "lut",
        String.concat "\n"
          [
            "let table : (string, int) Hashtbl.t = Hashtbl.create 8";
            "let () = Hashtbl.replace table \"a\" 1";
            "let get k = Hashtbl.find_opt table k";
            "let run xs = Pool.map (fun k -> get k) xs";
            "";
          ] );
    ]
    (fun root ->
      (* written only during module init: read-only at run time, safe *)
      let o = TL.run ~config:fixture_config ~root () in
      Alcotest.(check (list string))
        "init-only table read passes" []
        (List.filter (fun r -> r = "T001") (rules_of o)))

(* --- T002 ----------------------------------------------------------------- *)

let t002_two_hops () =
  with_fixture
    [
      ("leaf", "let now () = Sys.time ()\n");
      ("mid", "let helper () = Leaf.now () +. 1.\n");
      ("cachekey", "let key () = int_of_float (Mid.helper ())\n");
    ]
    (fun root ->
      let o = TL.run ~config:fixture_config ~root () in
      match
        List.filter
          (fun (f : Analysis.Finding.t) -> f.Analysis.Finding.rule = "T002")
          o.TL.findings
      with
      | [ f ] ->
          Alcotest.(check string) "file" "lib/cachekey.ml"
            f.Analysis.Finding.file;
          (* the witness chain walks both hops down to the clock read *)
          List.iter
            (fun needle ->
              let msg = f.Analysis.Finding.message in
              let n = String.length needle and m = String.length msg in
              let rec has i =
                i + n <= m && (String.sub msg i n = needle || has (i + 1))
              in
              Alcotest.(check bool)
                (Printf.sprintf "chain mentions %s" needle)
                true (has 0))
            [ "Cachekey.key"; "Mid.helper"; "Leaf.now" ]
      | other ->
          Alcotest.failf "expected exactly one T002, got %d" (List.length other))

let t002_clean_root () =
  with_fixture
    [
      ("leaf", "let pure () = 41\n");
      ("mid", "let helper () = Leaf.pure () + 1\n");
      ("cachekey", "let key () = Mid.helper ()\n");
    ]
    (fun root ->
      let o = TL.run ~config:fixture_config ~root () in
      Alcotest.(check (list string))
        "deterministic root passes" []
        (List.filter (fun r -> r = "T002") (rules_of o)))

(* --- T003 ----------------------------------------------------------------- *)

let t003_float_compare () =
  with_fixture
    [
      ( "floats",
        String.concat "\n"
          [
            "let eq (a : float) b = a = b";
            "let sorted xs = List.sort compare (xs : float list)";
            "let is_unset (x : float option) = x = None";
            "";
          ] );
    ]
    (fun root ->
      let o = TL.run ~config:fixture_config ~root () in
      let t003 =
        List.filter
          (fun (f : Analysis.Finding.t) -> f.Analysis.Finding.rule = "T003")
          o.TL.findings
      in
      (* bare `=` at float and `compare` instantiated at float list are
         caught; `= None` only inspects the constructor tag *)
      Alcotest.(check (list int))
        "lines flagged" [ 1; 2 ]
        (List.sort_uniq Int.compare
           (List.map (fun (f : Analysis.Finding.t) -> f.Analysis.Finding.line)
              t003)))

(* --- call graph: aliased cross-module calls -------------------------------- *)

let aliased_calls () =
  with_fixture
    [
      ("leaf", "let now () = Sys.time ()\n");
      ("mid", "let helper () = Leaf.now () +. 1.\n");
      ("alias", "let f = Mid.helper\nlet g () = f () +. 2.\n");
    ]
    (fun root ->
      let units, errs = Analysis_typed.Cmt_load.load ~root in
      Alcotest.(check int) "no load errors" 0 (List.length errs);
      let graph =
        Analysis_typed.Callgraph.extract ~sinks:[] ~safe_type_heads:[] units
      in
      let t =
        Analysis_typed.Summarize.run ~trusted_prefixes:[] ~sanitizers:[]
          ~mut_whitelist:[] graph
      in
      (* the bare alias carries the callee's effects... *)
      Alcotest.(check bool) "Alias.f inherits the clock" true
        (E.Set.mem E.Nondet_clock (Analysis_typed.Summarize.summary t "Alias.f"));
      (* ...and so does a caller through the alias *)
      Alcotest.(check bool) "Alias.g too" true
        (E.Set.mem E.Nondet_clock (Analysis_typed.Summarize.summary t "Alias.g"));
      (* chain bottoms out at the direct Sys.time read in Leaf *)
      match Analysis_typed.Summarize.chain t "Alias.g" E.Nondet_clock with
      | [] -> Alcotest.fail "expected a witness chain"
      | hops ->
          let last, _ = List.nth hops (List.length hops - 1) in
          Alcotest.(check string) "chain ends in Leaf.now" "Leaf.now" last)

(* --- effects golden round-trip --------------------------------------------- *)

let golden_roundtrip () =
  let summaries =
    [
      ("B.g", E.Set.of_list [ E.Io; E.Raises ]);
      ( "A.f",
        E.Set.of_list
          [
            E.Nondet_clock; E.Nondet_rand; E.Nondet_hash;
            E.Mut_write "A.table"; E.Mut_read "A.table";
          ] );
      ("C.pure", E.Set.empty);
    ]
  in
  let rendered = TL.golden_string summaries in
  let parsed =
    match Analysis.Json.of_string (String.trim rendered) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "golden does not re-parse: %s" msg
  in
  match E.golden_of_json parsed with
  | Error msg -> Alcotest.failf "golden_of_json: %s" msg
  | Ok back ->
      let norm l =
        List.sort (fun (a, _) (b, _) -> String.compare a b) l
        |> List.map (fun (id, s) -> (id, List.map E.to_string (E.Set.elements s)))
      in
      Alcotest.(check (list (pair string (list string))))
        "round-trip" (norm summaries) (norm back);
      (* rendering is deterministic: ids sorted regardless of input order *)
      Alcotest.(check string) "stable bytes" rendered
        (TL.golden_string (List.rev summaries))

let atom_strings () =
  List.iter
    (fun a ->
      match E.of_string (E.to_string a) with
      | Some b when E.compare_atom a b = 0 -> ()
      | _ -> Alcotest.failf "atom %s does not round-trip" (E.to_string a))
    [
      E.Nondet_clock; E.Nondet_rand; E.Nondet_hash; E.Mut_write "X.t";
      E.Mut_read "X.t"; E.Io; E.Raises;
    ]

let display_modnames () =
  List.iter
    (fun (mangled, display) ->
      Alcotest.(check string) mangled display
        (Analysis_typed.Cmt_load.display_of_modname mangled))
    [
      ("Engine__Pool", "Engine.Pool");
      ("Tbl", "Tbl");
      ("Serve__Retier", "Serve.Retier");
    ]

let suite =
  [
    Alcotest.test_case "T001 racy capture caught" `Quick t001_racy_capture;
    Alcotest.test_case "T001 mutex-guarded passes" `Quick t001_mutex_guarded;
    Alcotest.test_case "T001 whitelist honored" `Quick t001_whitelist;
    Alcotest.test_case "T001 init-only table readable" `Quick
      t001_init_only_read;
    Alcotest.test_case "T002 taint through two hops" `Quick t002_two_hops;
    Alcotest.test_case "T002 clean root passes" `Quick t002_clean_root;
    Alcotest.test_case "T003 float compares" `Quick t003_float_compare;
    Alcotest.test_case "aliased cross-module calls" `Quick aliased_calls;
    Alcotest.test_case "effects golden round-trip" `Quick golden_roundtrip;
    Alcotest.test_case "atom string forms" `Quick atom_strings;
    Alcotest.test_case "modname display" `Quick display_modnames;
  ]
