(* Golden-file generator for the regression suite.

   [golden_gen --one ID] renders one registry experiment to stdout
   exactly as [Runner.render] would — the dune @golden alias diffs
   that against test/golden/ID.expected, so [dune build @golden
   --auto-promote] (wrapped as [make golden-regen]) refreshes the
   committed goldens after an intentional output change.

   [golden_gen DIR] writes every ID.expected into DIR — the one-shot
   bootstrap form. *)

let render_one id =
  Tiered.Runner.render
    (Tiered.Runner.run_experiments ~jobs:1 [ Tiered.Experiment.find id ])

let () =
  (* Serve engine worker tasks first if re-invoked as a subprocess
     worker (never happens under the @golden alias, but keeps the
     binary safe to run with --backend-style harnesses). *)
  Engine.Proc.maybe_run_worker ();
  Engine.Remote.maybe_run_worker ();
  match Array.to_list Sys.argv with
  | [ _; "--one"; id ] -> print_string (render_one id)
  | [ _; dir ] ->
      List.iter
        (fun (e : Tiered.Experiment.t) ->
          let id = e.Tiered.Experiment.id in
          let oc = open_out_bin (Filename.concat dir (id ^ ".expected")) in
          output_string oc (render_one id);
          close_out oc)
        Tiered.Experiment.all
  | _ ->
      prerr_endline "usage: golden_gen --one ID | golden_gen DIR";
      exit 2
