(* The streaming pricing service (lib/serve): sliding-window demand,
   sharded ingest, incremental re-tiering with warm-started DP, and the
   daemon loop. The acceptance property is determinism: posted tiers
   are cut-for-cut what a from-scratch solve of the same window
   produces — across long runs that include warm solves, structural
   (arrival/departure) warm starts, unchanged replays, cache hits,
   forced divergence drills, and any shard count. *)

open Serve

let ip = Flowgen.Ipv4.of_int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- Clock -------------------------------------------------------------- *)

let test_manual_clock () =
  let clock, set = Clock.manual ~start:5. () in
  Alcotest.(check (float 0.)) "start" 5. (Clock.now clock);
  set 42.5;
  Alcotest.(check (float 0.)) "set" 42.5 (Clock.now clock)

(* --- Window ------------------------------------------------------------- *)

let wparams ?(bin_s = 10) ?(bins = 6) ?(decay = Window.No_decay) () =
  { Window.bin_s; bins; decay }

let test_window_mean_rate () =
  let p = wparams () in
  let w = Window.create p in
  (* 600 kB in one bin of a 6 x 10 s window: 600e3 * 8 / (60 * 1e6). *)
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:600_000. ~bin:0);
  let s = Window.snapshot w in
  Alcotest.(check int) "one flow" 1 (Array.length s.Window.s_flows);
  Alcotest.(check (float 1e-9)) "mean Mbps" 0.08
    s.Window.s_flows.(0).Window.f_mbps

let test_window_accumulates_and_slides () =
  let w = Window.create (wparams ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:100. ~bin:0);
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:100. ~bin:1);
  let rate_before = (Window.snapshot w).Window.s_flows.(0).Window.f_mbps in
  (* Slide until bin 0 and 1 are out of the window: nothing left. *)
  Window.advance_to w ~bin:7;
  let s = Window.snapshot w in
  Alcotest.(check bool) "had rate" true (rate_before > 0.);
  Alcotest.(check int) "fully decayed flow omitted" 0
    (Array.length s.Window.s_flows);
  (* The flow table still remembers the pair (uid stability). *)
  Alcotest.(check int) "flow count" 1 (Window.flow_count w)

let test_window_late_drop () =
  let w = Window.create (wparams ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:1. ~bin:10);
  let kept = Window.observe w ~src:(ip 3) ~dst:(ip 4) ~bytes:1. ~bin:4 in
  Alcotest.(check bool) "late dropped" false kept;
  Alcotest.(check int) "late counted" 1 (Window.late w);
  (* Oldest in-window bin is still accepted. *)
  let kept = Window.observe w ~src:(ip 3) ~dst:(ip 4) ~bytes:1. ~bin:5 in
  Alcotest.(check bool) "in-window kept" true kept

let test_window_ring_reuse () =
  (* A slot reused after a full wrap must not leak old bytes. *)
  let w = Window.create (wparams ~bins:4 ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:1000. ~bin:0);
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:24. ~bin:4);
  (* bin 4 maps to slot 0; the 1000 bytes of bin 0 must be gone. *)
  let s = Window.snapshot w in
  let expect = 24. *. 8. /. (4. *. 10. *. 1e6) in
  Alcotest.(check (float 1e-12)) "only new bytes" expect
    s.Window.s_flows.(0).Window.f_mbps

let test_window_lagging_flow () =
  (* Regression for the ring-index arithmetic (window.ml [pmod]): a
     flow that lags the window by more than a full wrap must have every
     stale slot zeroed on catch-up — both when it reappears and when
     the snapshot catches it up in place — with no out-of-range index
     on the way. *)
  let w = Window.create (wparams ~bins:4 ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:1000. ~bin:0);
  (* Another flow drags the window far ahead; flow 0 lags > bins. *)
  ignore (Window.observe w ~src:(ip 3) ~dst:(ip 4) ~bytes:40. ~bin:9);
  (* Flow 0 reappears: its whole ring predates the window, so only the
     fresh bytes may count. *)
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:24. ~bin:9);
  let s = Window.snapshot w in
  let rate u =
    (Array.to_list s.Window.s_flows
    |> List.find (fun f -> f.Window.f_uid = u))
      .Window.f_mbps
  in
  let expect = 24. *. 8. /. (4. *. 10. *. 1e6) in
  Alcotest.(check (float 1e-12)) "stale bytes zeroed" expect (rate 0);
  (* And a flow that stops sending is caught up lazily by the snapshot
     itself, far past a full wrap, without leaking its old bytes. *)
  Window.advance_to w ~bin:20;
  let s = Window.snapshot w in
  Alcotest.(check int) "lagging flows fully retired" 0
    (Array.length s.Window.s_flows)

let test_window_exponential_decay () =
  let decay = Window.Exponential { half_life_bins = 1. } in
  let w = Window.create (wparams ~decay ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:64. ~bin:0);
  ignore (Window.observe w ~src:(ip 3) ~dst:(ip 4) ~bytes:64. ~bin:2);
  Window.advance_to w ~bin:2;
  let s = Window.snapshot w in
  let rate u =
    let r =
      Array.to_list s.Window.s_flows
      |> List.find (fun f -> f.Window.f_uid = u)
    in
    r.Window.f_mbps
  in
  (* Same bytes, two bins apart, half-life one bin: 4x ratio. *)
  Alcotest.(check (float 1e-9)) "half-life ratio" 4. (rate 1 /. rate 0)

let test_window_diurnal_weights () =
  let decay = Window.Diurnal { amplitude = 0.5; peak_bin = 2 } in
  let w = Window.create (wparams ~bins:4 ~decay ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:100. ~bin:2);
  ignore (Window.observe w ~src:(ip 3) ~dst:(ip 4) ~bytes:100. ~bin:3);
  Window.advance_to w ~bin:3;
  let s = Window.snapshot w in
  let peak = s.Window.s_flows.(0).Window.f_mbps in
  let off = s.Window.s_flows.(1).Window.f_mbps in
  (* Peak-bin bytes weigh 1 + 0.5, the quarter-cycle bin 1.0. *)
  Alcotest.(check (float 1e-9)) "peak emphasis" 1.5 (peak /. off)

let test_window_occupancy () =
  let w = Window.create (wparams ~bins:4 ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:1. ~bin:0);
  Alcotest.(check (float 1e-9)) "one bin" 0.25
    (Window.snapshot w).Window.s_occupancy;
  Window.advance_to w ~bin:9;
  Alcotest.(check (float 1e-9)) "capped" 1.
    (Window.snapshot w).Window.s_occupancy

let test_window_validation () =
  let check name p =
    Alcotest.check_raises name (Invalid_argument "") (fun () ->
        try ignore (Window.create p) with Invalid_argument _ ->
          raise (Invalid_argument ""))
  in
  check "bins" (wparams ~bins:0 ());
  check "bin_s" (wparams ~bin_s:0 ());
  check "half-life"
    (wparams ~decay:(Window.Exponential { half_life_bins = 0. }) ());
  check "amplitude"
    (wparams ~decay:(Window.Diurnal { amplitude = 1.5; peak_bin = 0 }) ())

(* --- Ingest ------------------------------------------------------------- *)

let small_workload =
  lazy
    (Flowgen.Workload.generate
       (Netsim.Presets.eu_isp ())
       {
         Flowgen.Workload.n_flows = 60;
         aggregate_gbps = 2.;
         locality_scale = 50.;
         locality_spread = 1.0;
         demand_cv = 1.0;
         demand_distance_exponent = 1.0;
         local_tail_miles = 30.;
         on_net_fraction = 0.5;
         distance_mode = `Path;
         seed = 77;
       })

let test_ingest_sorted_and_replayed () =
  let w = Lazy.force small_workload in
  let ing = Ingest.of_workload ~days:2 ~seed:3 w in
  let rec drain acc last n =
    match Ingest.next ing with
    | None -> (acc, n)
    | Some r ->
        Alcotest.(check bool) "nondecreasing" true
          (r.Flowgen.Netflow.first_s >= last);
        drain (acc + r.Flowgen.Netflow.first_s) r.Flowgen.Netflow.first_s
          (n + 1)
    | exception e -> raise e
  in
  let _, n = drain 0 min_int 0 in
  Alcotest.(check (option int)) "both days yielded" (Some n) (Ingest.total ing);
  Alcotest.(check bool) "two days of records" true (n > 0 && n mod 2 = 0)

let test_ingest_day_shift () =
  let w = Lazy.force small_workload in
  let one = Ingest.of_workload ~days:1 ~seed:3 w in
  let two = Ingest.of_workload ~days:2 ~seed:3 w in
  let day1 = ref [] in
  let rec skip_day1 () =
    match Ingest.next two with
    | Some r when r.Flowgen.Netflow.first_s < Flowgen.Netflow.day_seconds ->
        skip_day1 ()
    | other -> other
  in
  let rec drain1 () =
    match Ingest.next one with
    | Some r ->
        day1 := r :: !day1;
        drain1 ()
    | None -> ()
  in
  drain1 ();
  (* First record of day 2 is the first template record, shifted. *)
  let first_template = List.nth (List.rev !day1) 0 in
  match skip_day1 () with
  | Some r ->
      Alcotest.(check int) "shifted by a day"
        (first_template.Flowgen.Netflow.first_s + Flowgen.Netflow.day_seconds)
        r.Flowgen.Netflow.first_s;
      Alcotest.(check (float 0.)) "same bytes"
        first_template.Flowgen.Netflow.bytes r.Flowgen.Netflow.bytes
  | None -> Alcotest.fail "day 2 missing"

(* Hand-forged wire-shaped records for the sequence/daemon tests. *)
let rec_ ?(router = 0) ?(src_port = 1000) ?(dst_port = 80) ~src ~dst ~bytes
    ~first_s () =
  {
    Flowgen.Netflow.src = ip src;
    dst = ip dst;
    src_port;
    dst_port;
    proto = 6;
    bytes;
    packets = 1.;
    first_s;
    last_s = first_s + 1;
    router;
  }

let test_ingest_sequence_verbatim () =
  (* [of_sequence] must preserve the given order — it exists precisely
     so the tests can feed out-of-order streams. *)
  let records =
    [
      rec_ ~src:1 ~dst:101 ~bytes:10. ~first_s:20 ();
      rec_ ~src:2 ~dst:102 ~bytes:10. ~first_s:5 ();
      rec_ ~src:3 ~dst:103 ~bytes:10. ~first_s:12 ();
    ]
  in
  let ing = Ingest.of_sequence records in
  Alcotest.(check (option int)) "total known" (Some 3) (Ingest.total ing);
  let order = ref [] in
  let rec drain () =
    match Ingest.next ing with
    | Some r ->
        order := r.Flowgen.Netflow.first_s :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "verbatim order" [ 20; 5; 12 ]
    (List.rev !order);
  Alcotest.(check bool) "no wire counters" true
    (Ingest.wire_counters ing = None)

let test_ingest_wire_reader () =
  (* A wire-backed ingest decodes the same records the encoder was
     given (normalized) and exposes the decoder's counters. *)
  let records =
    [
      rec_ ~src:1 ~dst:101 ~bytes:1500. ~first_s:3 ();
      rec_ ~src:2 ~dst:102 ~bytes:250. ~first_s:7 ();
    ]
  in
  let wire = String.concat "" (Flowgen.Netflow.Wire.encode records) in
  let ing = Ingest.of_reader (Flowgen.Netflow.Wire.of_string wire) in
  Alcotest.(check (option int)) "length unknown up front" None
    (Ingest.total ing);
  let got = ref [] in
  let rec drain () =
    match Ingest.next ing with
    | Some r ->
        got := r :: !got;
        drain ()
    | None -> ()
  in
  drain ();
  let expect = List.map Flowgen.Netflow.Wire.normalize records in
  Alcotest.(check int) "all decoded" (List.length expect) (List.length !got);
  List.iter2
    (fun (a : Flowgen.Netflow.record) b ->
      Alcotest.(check int) "first_s" a.Flowgen.Netflow.first_s
        b.Flowgen.Netflow.first_s;
      Alcotest.(check (float 0.)) "bytes" a.Flowgen.Netflow.bytes
        b.Flowgen.Netflow.bytes)
    expect (List.rev !got);
  Alcotest.(check (option (pair int int))) "clean stream" (Some (0, 0))
    (Ingest.wire_counters ing)

(* --- Stats -------------------------------------------------------------- *)

let test_percentile_nearest_rank () =
  let a = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. |] in
  let check_q name expect got =
    Alcotest.(check (option (float 0.))) name expect got
  in
  check_q "p50" (Some 5.) (Stats.percentile a ~p:50.);
  check_q "p99" (Some 10.) (Stats.percentile a ~p:99.);
  check_q "p0" (Some 1.) (Stats.percentile a ~p:0.);
  (* An empty histogram has no quantiles — not a sentinel zero. *)
  check_q "empty" None (Stats.percentile [||] ~p:50.);
  (* A single observation is every quantile of itself. *)
  check_q "n=1 p50" (Some 7.) (Stats.percentile [| 7. |] ~p:50.);
  check_q "n=1 p99" (Some 7.) (Stats.percentile [| 7. |] ~p:99.)

let test_stats_rates () =
  let s = Stats.create () in
  Stats.observe s ~solve:`Cold ~latency_s:0.002 ~evaluations:10 ~fallback:false;
  Stats.observe s ~solve:`Warm ~latency_s:0.001 ~evaluations:5 ~fallback:false;
  Stats.observe s ~solve:`Unchanged ~latency_s:0.0005 ~evaluations:0
    ~fallback:false;
  Stats.observe s ~solve:`Cached ~latency_s:0.0001 ~evaluations:0
    ~fallback:false;
  Stats.observe s ~solve:`Cold ~latency_s:0.003 ~evaluations:12 ~fallback:true;
  let sum = Stats.summary s in
  Alcotest.(check int) "retiers" 5 sum.Stats.retiers;
  Alcotest.(check int) "fallbacks" 1 sum.Stats.fallbacks;
  Alcotest.(check int) "evaluations" 27 sum.Stats.evaluations;
  (* 2 of the 4 actual solves reused state; the cache hit is excluded. *)
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 sum.Stats.warm_hit_rate;
  Alcotest.(check (option (float 1e-9))) "p99 = max" sum.Stats.max_ms
    sum.Stats.p99_ms

let test_stats_absent_vs_zero () =
  (* Quantiles of nothing and dedup-off both serialize as JSON null —
     a 0 would read as "instant re-tiers" / "no duplicates". *)
  let empty = Stats.summary (Stats.create ()) in
  Alcotest.(check (option (float 0.))) "no p50" None empty.Stats.p50_ms;
  Alcotest.(check (option (float 0.))) "no max" None empty.Stats.max_ms;
  let run =
    {
      Stats.records = 10;
      dropped_dup = None;
      late = 0;
      seq_gaps = 0;
      malformed = 0;
      shards = 1;
      occupancy = 1.;
      wall_s = 0.5;
      records_per_s = 20.;
    }
  in
  let j = Stats.to_json empty run in
  Alcotest.(check bool) "dedup off is null" true
    (contains j {|"dropped_dup": null|});
  Alcotest.(check bool) "empty quantile is null" true
    (contains j {|"p50_retier_ms": null|});
  (* One observation: every quantile is that sample, and JSON carries
     numbers again. *)
  let s1 = Stats.create () in
  Stats.observe s1 ~solve:`Cold ~latency_s:0.004 ~evaluations:1
    ~fallback:false;
  let sum1 = Stats.summary s1 in
  Alcotest.(check (option (float 1e-9))) "n=1 p50 = sample" (Some 4.)
    sum1.Stats.p50_ms;
  Alcotest.(check (option (float 1e-9))) "n=1 p99 = p50" sum1.Stats.p50_ms
    sum1.Stats.p99_ms;
  let j1 =
    Stats.to_json sum1 { run with Stats.dropped_dup = Some 0 }
  in
  Alcotest.(check bool) "dedup on is a number" true
    (contains j1 {|"dropped_dup": 0|})

(* --- Retier on hand-crafted snapshots ----------------------------------- *)

(* A tiny synthetic universe: 8 flows with distinct distances, metadata
   keyed by endpoint pair, demands set per test. *)
let universe_n = 8

let meta_of src dst =
  let s = Flowgen.Ipv4.to_int src and d = Flowgen.Ipv4.to_int dst in
  if d = 999 then None
  else if s >= 1 && s <= universe_n && d = 100 + s then
    Some
      {
        Retier.m_id = s - 1;
        m_distance_miles = 20. +. (60. *. float_of_int s);
        m_locality = (if s <= 4 then Tiered.Flow.National else Tiered.Flow.International);
        m_on_net = s mod 2 = 0;
      }
  else None

let snap_of ?(bin = 0) demands =
  let flows =
    List.mapi
      (fun i q ->
        { Window.f_src = ip (i + 1); f_dst = ip (100 + i + 1); f_uid = i; f_mbps = q })
      demands
    |> List.filter (fun f -> f.Window.f_mbps > 0.)
  in
  {
    Window.s_bin = bin;
    s_flows = Array.of_list flows;
    s_occupancy = 1.;
    s_late = 0;
  }

let rparams ?(spec = Tiered.Market.Ced) ?(n_bundles = 3) ?(cold_every = 0)
    ?(use_cache = false) () =
  {
    Retier.spec;
    alpha = 2.0;
    p0 = 30.;
    n_bundles;
    cost_model = Tiered.Cost_model.concave ~theta:0.5;
    samples = 8;
    cold_every;
    use_cache;
  }

let base_demands = [ 40.; 25.; 9.; 31.; 5.; 17.; 52.; 3. ]

let check_cuts = Alcotest.(check (list int))
let check_prices = Alcotest.(check (array (float 0.)))

let check_matches_cold t snap (o : Retier.outcome) =
  let cold = Retier.solve_cold t snap in
  check_cuts "cuts = from-scratch" cold.Retier.o_cuts o.Retier.o_cuts;
  check_prices "prices = from-scratch" cold.Retier.o_prices o.Retier.o_prices;
  Alcotest.(check (float 0.)) "profit = from-scratch" cold.Retier.o_profit
    o.Retier.o_profit

let test_retier_empty_window () =
  let t = Retier.create (rparams ()) ~meta_of in
  let o = Retier.retier t (snap_of []) in
  Alcotest.(check int) "no flows" 0 o.Retier.o_n_flows;
  Alcotest.(check (list int)) "no cuts" [] o.Retier.o_cuts;
  Alcotest.(check bool) "not calibrated" false (Retier.calibrated t)

let test_retier_skips_unknown_endpoints () =
  let t = Retier.create (rparams ()) ~meta_of in
  let snap = snap_of base_demands in
  let unknown =
    { Window.f_src = ip 50; f_dst = ip 999; f_uid = 99; f_mbps = 7. }
  in
  let snap =
    { snap with Window.s_flows = Array.append snap.Window.s_flows [| unknown |] }
  in
  let o = Retier.retier t snap in
  Alcotest.(check int) "skipped" 1 o.Retier.o_skipped;
  Alcotest.(check int) "priced the rest" universe_n o.Retier.o_n_flows

let test_retier_unchanged_replay () =
  let t = Retier.create (rparams ()) ~meta_of in
  let o1 = Retier.retier t (snap_of base_demands) in
  let o2 = Retier.retier t (snap_of ~bin:1 base_demands) in
  Alcotest.(check bool) "first solve cold" true (o1.Retier.o_solve = `Cold);
  Alcotest.(check bool) "replayed" true (o2.Retier.o_solve = `Unchanged);
  Alcotest.(check int) "no evaluations" 0 o2.Retier.o_evaluations;
  Alcotest.(check int) "dirty_from = n" universe_n o2.Retier.o_dirty_from;
  check_cuts "same cuts" o1.Retier.o_cuts o2.Retier.o_cuts

let test_retier_warm_suffix () =
  let t = Retier.create (rparams ()) ~meta_of in
  ignore (Retier.retier t (snap_of base_demands));
  (* Bump one demand: only that flow's valuation changes under CED, so
     the dirty suffix starts at its cost-order position, not 0. *)
  let bumped = List.mapi (fun i q -> if i = 6 then q +. 5. else q) base_demands in
  let snap = snap_of ~bin:1 bumped in
  let o = Retier.retier t snap in
  Alcotest.(check bool) "warm" true (o.Retier.o_solve = `Warm);
  Alcotest.(check bool) "suffix only" true
    (o.Retier.o_dirty_from > 0 && o.Retier.o_dirty_from < universe_n);
  Alcotest.(check bool) "no spot-check trip" false o.Retier.o_fallback;
  check_matches_cold t snap o

let test_retier_forced_fallback () =
  let t = Retier.create (rparams ~cold_every:2 ()) ~meta_of in
  ignore (Retier.retier t (snap_of base_demands));
  let bumped = List.map (fun q -> q +. 1.) base_demands in
  let snap = snap_of ~bin:1 bumped in
  (* Second solve: the drill forces the divergence path. *)
  let o = Retier.retier t snap in
  Alcotest.(check bool) "cold via drill" true (o.Retier.o_solve = `Cold);
  Alcotest.(check bool) "fallback flagged" true o.Retier.o_fallback;
  check_matches_cold t snap o

let test_retier_cold_every_one () =
  (* cold_every = 1: the drill fires on every actual solve — nothing is
     ever warm, and every outcome carries the fallback flag. *)
  let t = Retier.create (rparams ~cold_every:1 ()) ~meta_of in
  let demands =
    [ base_demands; base_demands; List.map (fun q -> q +. 2.) base_demands ]
  in
  List.iteri
    (fun i d ->
      let snap = snap_of ~bin:i d in
      let o = Retier.retier t snap in
      Alcotest.(check bool)
        (Printf.sprintf "window %d cold" i)
        true
        (o.Retier.o_solve = `Cold);
      Alcotest.(check bool)
        (Printf.sprintf "window %d drilled" i)
        true o.Retier.o_fallback;
      check_matches_cold t snap o)
    demands

let test_retier_drill_counts_solves_only () =
  (* The cadence counts actual solves, not posted windows: unchanged
     replays in between must not advance it. With cold_every = 2 the
     drill lands exactly on solves #2 and #4, however many replays
     separate them. *)
  let t = Retier.create (rparams ~cold_every:2 ()) ~meta_of in
  let d2 = List.map (fun q -> q +. 3.) base_demands in
  let d3 = List.mapi (fun i q -> if i = 5 then q +. 1. else q) d2 in
  let windows = [ base_demands; base_demands; base_demands; d2; d3 ] in
  let tags =
    List.mapi
      (fun i d ->
        let snap = snap_of ~bin:i d in
        let o = Retier.retier t snap in
        check_matches_cold t snap o;
        o.Retier.o_solve)
      windows
  in
  (* Solve #1 cold (no state); window 2 would replay but the drill is
     due on solve #2, so it goes cold; window 3 replays (the drill
     already fired, solves = 2); window 4 is solve #3 — warm; window 5
     is solve #4 — drill again. *)
  let show = function
    | `Cold -> "cold"
    | `Warm -> "warm"
    | `Unchanged -> "unchanged"
    | `Cached -> "cached"
  in
  Alcotest.(check (list string)) "drill cadence pinned to solves"
    [ "cold"; "cold"; "unchanged"; "warm"; "cold" ]
    (List.map show tags)

let test_retier_flow_churn () =
  (* Flows appearing/disappearing change n: the retained state is
     remapped through the clean common prefix (structural warm start),
     and the result still matches from-scratch. *)
  let t = Retier.create (rparams ()) ~meta_of in
  ignore (Retier.retier t (snap_of base_demands));
  let shrunk = List.mapi (fun i q -> if i = 2 then 0. else q) base_demands in
  let snap = snap_of ~bin:1 shrunk in
  let o = Retier.retier t snap in
  Alcotest.(check int) "one flow gone" (universe_n - 1) o.Retier.o_n_flows;
  Alcotest.(check bool) "departure warm-starts" true
    (o.Retier.o_solve = `Warm);
  Alcotest.(check bool) "clean prefix retained" true
    (o.Retier.o_dirty_from > 0);
  check_matches_cold t snap o;
  (* And back: the arrival also warm-starts. *)
  let snap = snap_of ~bin:2 base_demands in
  let o = Retier.retier t snap in
  Alcotest.(check bool) "arrival warm-starts" true (o.Retier.o_solve = `Warm);
  check_matches_cold t snap o

let test_retier_cache_roundtrip () =
  let t = Retier.create (rparams ~use_cache:true ()) ~meta_of in
  let d2 = List.map (fun q -> q *. 1.5) base_demands in
  let o1 = Retier.retier t (snap_of base_demands) in
  let _o2 = Retier.retier t (snap_of ~bin:1 d2) in
  (* Revisiting the first demand pattern hits the cache... *)
  let o3 = Retier.retier t (snap_of ~bin:2 base_demands) in
  Alcotest.(check bool) "cache hit" true (o3.Retier.o_solve = `Cached);
  check_cuts "cached cuts" o1.Retier.o_cuts o3.Retier.o_cuts;
  check_prices "cached prices" o1.Retier.o_prices o3.Retier.o_prices;
  (* ...and leaves the retained state on the last *solved* window, so
     revisiting that one replays instead of re-solving. *)
  let o4 = Retier.retier t (snap_of ~bin:3 d2) in
  Alcotest.(check bool) "state untouched by hit" true
    (o4.Retier.o_solve = `Unchanged || o4.Retier.o_solve = `Cached)

let test_retier_logit_all_or_nothing () =
  let spec = Tiered.Market.Logit { s0 = 0.3 } in
  let t = Retier.create (rparams ~spec ()) ~meta_of in
  ignore (Retier.retier t (snap_of base_demands));
  let o_same = Retier.retier t (snap_of ~bin:1 base_demands) in
  Alcotest.(check bool) "identical replays" true
    (o_same.Retier.o_solve = `Unchanged);
  let bumped = List.mapi (fun i q -> if i = 6 then q +. 5. else q) base_demands in
  let snap = snap_of ~bin:2 bumped in
  let o = Retier.retier t snap in
  (* Logit never trusts a partial prefix: dirty_from collapses to 0. *)
  Alcotest.(check int) "all-or-nothing" 0 o.Retier.o_dirty_from;
  check_matches_cold t snap o

let test_retier_rejects_linear () =
  Alcotest.check_raises "linear rejected" (Invalid_argument "")
    (fun () ->
      try
        ignore
          (Retier.create
             (rparams ~spec:(Tiered.Market.Linear { epsilon = 1.2 }) ())
             ~meta_of)
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* --- Shards -------------------------------------------------------------- *)

let test_shards_stable_partition () =
  let t = Shards.create ~shards:3 ~dedup:false (wparams ()) in
  let r = rec_ ~src:0x0A0B0C01 ~dst:0x0A0B0D02 ~bytes:1. ~first_s:0 () in
  let s0 = Shards.shard_of t r in
  (* The same endpoint pair always lands on the same shard, regardless
     of ports, router or time — a flow's duplicates share its shard. *)
  let variants =
    [
      rec_ ~router:5 ~src:0x0A0B0C01 ~dst:0x0A0B0D02 ~bytes:9. ~first_s:77 ();
      rec_ ~src_port:4242 ~src:0x0A0B0C01 ~dst:0x0A0B0D02 ~bytes:2. ~first_s:3 ();
    ]
  in
  List.iter
    (fun v -> Alcotest.(check int) "stable shard" s0 (Shards.shard_of t v))
    variants;
  (* Last-octet churn stays on the shard too (/24 prefix partition). *)
  let sibling = rec_ ~src:0x0A0B0C63 ~dst:0x0A0B0D07 ~bytes:1. ~first_s:0 () in
  Alcotest.(check int) "/24 sibling" s0 (Shards.shard_of t sibling)

let test_shards_merge_matches_single () =
  (* The sharded pipeline's merged snapshot feeds the same tiers as a
     1-shard run: exercised end-to-end below; here, the merge itself —
     flow multiset and aggregate counters agree at any shard count. *)
  let records =
    (* Endpoints spread across /24s so a multi-shard run actually
       partitions the flows. *)
    List.init 40 (fun i ->
        rec_ ~src:((i * 1024) + 7) ~dst:((i * 2048) + 9000)
          ~bytes:(float_of_int (100 * (i + 1)))
          ~first_s:i ())
  in
  let run k =
    let t = Shards.create ~shards:k ~dedup:false (wparams ()) in
    List.iter (Shards.observe t) records;
    Shards.snapshot t ~bin:4 ~retire_s:(-100)
  in
  let s1 = run 1 and s3 = run 3 in
  let key f = (Flowgen.Ipv4.to_int f.Window.f_src, f.Window.f_mbps) in
  let sorted s =
    Array.to_list s.Window.s_flows |> List.map key |> List.sort compare
  in
  Alcotest.(check int) "same flow count" (Array.length s1.Window.s_flows)
    (Array.length s3.Window.s_flows);
  Alcotest.(check bool) "same rates" true (sorted s1 = sorted s3);
  Alcotest.(check (float 0.)) "same occupancy" s1.Window.s_occupancy
    s3.Window.s_occupancy;
  Alcotest.(check int) "same late" s1.Window.s_late s3.Window.s_late

(* --- Daemon end-to-end: warm == cold over a multi-day run ---------------- *)

let serve_wp = { Window.bin_s = 3600; bins = 24; decay = Window.No_decay }

let serve_retier ?(cold_every = 9) w =
  Retier.create
    {
      Retier.spec = Tiered.Market.Ced;
      alpha = 2.0;
      p0 = 30.;
      n_bundles = 4;
      cost_model = Tiered.Cost_model.concave ~theta:0.5;
      samples = 8;
      cold_every;
      use_cache = false;
    }
    ~meta_of:(Retier.meta_of_workload w)

let test_daemon_determinism () =
  let w = Lazy.force small_workload in
  let retier = serve_retier w in
  let shards = Shards.create ~shards:1 ~dedup:true serve_wp in
  let clock, _set = Clock.manual () in
  let windows = ref 0 in
  let result =
    Daemon.run
      ~on_retier:(fun snap o ->
        incr windows;
        check_matches_cold retier snap o)
      ~clock ~shards ~retier
      { Daemon.every_s = 3600 }
      (* Three days: hourly windows repeat with a one-day period once
         the window has slid fully into replayed traffic, so the run
         contains signature-identical (unchanged) windows. *)
      (Ingest.of_workload ~days:3 ~seed:11 w)
  in
  Alcotest.(check bool)
    (Printf.sprintf "at least 20 windows (got %d)" !windows)
    true (!windows >= 20);
  let s = result.Daemon.r_stats in
  Alcotest.(check bool) "warm solves happened" true (s.Stats.warm > 0);
  Alcotest.(check bool) "forced fallback happened" true (s.Stats.fallbacks >= 1);
  Alcotest.(check int) "every window posted" !windows s.Stats.retiers;
  (* Day 2 replays day 1's bytes at the same phase, so some windows are
     signature-identical to an already-solved one. *)
  Alcotest.(check bool) "unchanged replays happened" true (s.Stats.unchanged > 0);
  Alcotest.(check bool) "duplicates were suppressed" true
    (match result.Daemon.r_run.Stats.dropped_dup with
    | Some d -> d > 0
    | None -> false);
  Alcotest.(check int) "no late drops" 0 result.Daemon.r_run.Stats.late;
  Alcotest.(check int) "one shard reported" 1
    result.Daemon.r_run.Stats.shards

let run_sharded ?pool ~shards ~days w =
  let retier = serve_retier w in
  let state = Shards.create ~shards ~dedup:true serve_wp in
  let clock, _ = Clock.manual () in
  let posted = ref [] in
  let result =
    Daemon.run
      ~on_retier:(fun _ o -> posted := o :: !posted)
      ~clock ?pool ~shards:state ~retier
      { Daemon.every_s = 3600 }
      (Ingest.of_workload ~days ~seed:11 w)
  in
  (result, List.rev !posted)

let check_same_postings name a b =
  Alcotest.(check int) (name ^ ": window count") (List.length a)
    (List.length b);
  List.iter2
    (fun (x : Retier.outcome) (y : Retier.outcome) ->
      check_cuts (name ^ ": cuts") x.Retier.o_cuts y.Retier.o_cuts;
      check_prices (name ^ ": prices") x.Retier.o_prices y.Retier.o_prices;
      Alcotest.(check (float 0.))
        (name ^ ": profit")
        x.Retier.o_profit y.Retier.o_profit)
    a b

let test_daemon_shard_equality () =
  (* The acceptance pin of the sharded pipeline: posted tiers are
     bitwise those of the 1-shard run, window for window, and the
     aggregate run counters agree. *)
  let w = Lazy.force small_workload in
  let r1, p1 = run_sharded ~shards:1 ~days:2 w in
  let r3, p3 = run_sharded ~shards:3 ~days:2 w in
  check_same_postings "3 vs 1 shards" p1 p3;
  Alcotest.(check int) "same records" r1.Daemon.r_run.Stats.records
    r3.Daemon.r_run.Stats.records;
  Alcotest.(check (option int)) "same duplicates dropped"
    r1.Daemon.r_run.Stats.dropped_dup r3.Daemon.r_run.Stats.dropped_dup;
  Alcotest.(check int) "same flows" r1.Daemon.r_flows r3.Daemon.r_flows

let test_daemon_shard_pool () =
  (* Same pin with the drain fanned out on a domain pool. *)
  let w = Lazy.force small_workload in
  let _, serial = run_sharded ~shards:2 ~days:1 w in
  let _, pooled =
    Engine.Pool.with_pool ~jobs:2 (fun pool ->
        run_sharded ~pool ~shards:2 ~days:1 w)
  in
  check_same_postings "pooled vs serial" serial pooled

let test_daemon_out_of_order () =
  (* Out-of-order arrivals (dedup off — its contract needs ordered
     input): the tail horizon must not be pulled backwards by a late
     record, and every posted window still matches from-scratch. *)
  let records =
    [
      rec_ ~src:1 ~dst:101 ~bytes:4.5e5 ~first_s:2 ();
      rec_ ~src:2 ~dst:102 ~bytes:3.0e5 ~first_s:25 ();
      (* Late but in-window: must land in its own bin, and must not
         rewind last_seen (the tail re-tier still covers bin 2). *)
      rec_ ~src:1 ~dst:101 ~bytes:1.5e5 ~first_s:18 ();
    ]
  in
  let retier = Retier.create (rparams ()) ~meta_of in
  let shards = Shards.create ~shards:1 ~dedup:false (wparams ()) in
  let clock, _ = Clock.manual () in
  let posted = ref [] in
  let result =
    Daemon.run
      ~on_retier:(fun snap o ->
        posted := o :: !posted;
        check_matches_cold retier snap o)
      ~clock ~shards ~retier
      { Daemon.every_s = 10 }
      (Ingest.of_sequence records)
  in
  Alcotest.(check bool) "dedup off" true
    (result.Daemon.r_run.Stats.dropped_dup = None);
  Alcotest.(check int) "nothing late" 0 result.Daemon.r_run.Stats.late;
  match !posted with
  | last :: _ ->
      (* last_seen = 25 (not 18): the tail re-tier covers bin 2. *)
      Alcotest.(check int) "tail window bin" 2 last.Retier.o_bin
  | [] -> Alcotest.fail "no windows posted"

let test_daemon_dedup_and_late () =
  (* Duplicates (same 5-tuple and window, different router) are dropped
     and counted; a record older than the whole window is dropped as
     late, not misread as a duplicate. *)
  let records =
    [
      rec_ ~router:0 ~src:1 ~dst:101 ~bytes:1e5 ~first_s:0 ();
      rec_ ~router:7 ~src:1 ~dst:101 ~bytes:1e5 ~first_s:0 ();
      rec_ ~router:0 ~src:2 ~dst:102 ~bytes:2e5 ~first_s:0 ();
      rec_ ~router:3 ~src:2 ~dst:102 ~bytes:2e5 ~first_s:0 ();
      rec_ ~router:0 ~src:1 ~dst:101 ~bytes:1e5 ~first_s:70 ();
      (* Fresh 5-tuple window, but its bin slid out 10s ago. *)
      rec_ ~router:0 ~src:2 ~dst:102 ~bytes:2e5 ~first_s:5 ();
    ]
  in
  let retier = Retier.create (rparams ()) ~meta_of in
  let shards = Shards.create ~shards:1 ~dedup:true (wparams ()) in
  let clock, _ = Clock.manual () in
  let result =
    Daemon.run ~clock ~shards ~retier
      { Daemon.every_s = 1000 }
      (Ingest.of_sequence records)
  in
  Alcotest.(check int) "all ingested" 6 result.Daemon.r_run.Stats.records;
  Alcotest.(check (option int)) "two duplicates dropped" (Some 2)
    result.Daemon.r_run.Stats.dropped_dup;
  Alcotest.(check int) "one late drop" 1 result.Daemon.r_run.Stats.late

let test_daemon_wire_counters () =
  (* A wire-backed run surfaces the decoder's accounting: a crafted
     sequence jump shows up as seq_gaps, trailing garbage as malformed,
     and the records still price. *)
  let r1 = rec_ ~src:1 ~dst:101 ~bytes:4.5e5 ~first_s:2 () in
  let r2 = rec_ ~src:2 ~dst:102 ~bytes:3.0e5 ~first_s:14 () in
  let wire =
    Flowgen.Netflow.Wire.encode_v5 ~router:0 ~seq:0 [ r1 ]
    (* Sequence should be 1 here: 5 flows went missing upstream. *)
    ^ Flowgen.Netflow.Wire.encode_v5 ~router:0 ~seq:6 [ r2 ]
    ^ "trailing-garbage"
  in
  let retier = Retier.create (rparams ()) ~meta_of in
  let shards = Shards.create ~shards:1 ~dedup:true (wparams ()) in
  let clock, _ = Clock.manual () in
  let result =
    Daemon.run ~clock ~shards ~retier
      { Daemon.every_s = 1000 }
      (Ingest.of_reader (Flowgen.Netflow.Wire.of_string wire))
  in
  Alcotest.(check int) "both records priced" 2
    result.Daemon.r_run.Stats.records;
  Alcotest.(check int) "gap accounted" 5 result.Daemon.r_run.Stats.seq_gaps;
  Alcotest.(check int) "garbage accounted" 1
    result.Daemon.r_run.Stats.malformed

let test_daemon_validation () =
  let shards = Shards.create ~shards:1 ~dedup:false (wparams ()) in
  let t = Retier.create (rparams ()) ~meta_of in
  let clock, _ = Clock.manual () in
  Alcotest.check_raises "every_s" (Invalid_argument "Serve.Daemon: every_s < 1")
    (fun () ->
      ignore
        (Daemon.run ~clock ~shards ~retier:t
           { Daemon.every_s = 0 }
           (Ingest.of_records [])))

let suite =
  [
    Alcotest.test_case "manual clock" `Quick test_manual_clock;
    Alcotest.test_case "window mean rate" `Quick test_window_mean_rate;
    Alcotest.test_case "window slides" `Quick test_window_accumulates_and_slides;
    Alcotest.test_case "window late drop" `Quick test_window_late_drop;
    Alcotest.test_case "window ring reuse" `Quick test_window_ring_reuse;
    Alcotest.test_case "window lagging flow" `Quick test_window_lagging_flow;
    Alcotest.test_case "window exponential decay" `Quick test_window_exponential_decay;
    Alcotest.test_case "window diurnal weights" `Quick test_window_diurnal_weights;
    Alcotest.test_case "window occupancy" `Quick test_window_occupancy;
    Alcotest.test_case "window validation" `Quick test_window_validation;
    Alcotest.test_case "ingest sorted + replayed" `Quick test_ingest_sorted_and_replayed;
    Alcotest.test_case "ingest day shift" `Quick test_ingest_day_shift;
    Alcotest.test_case "ingest sequence verbatim" `Quick test_ingest_sequence_verbatim;
    Alcotest.test_case "ingest wire reader" `Quick test_ingest_wire_reader;
    Alcotest.test_case "percentile nearest rank" `Quick test_percentile_nearest_rank;
    Alcotest.test_case "stats rates" `Quick test_stats_rates;
    Alcotest.test_case "stats absent vs zero" `Quick test_stats_absent_vs_zero;
    Alcotest.test_case "retier empty window" `Quick test_retier_empty_window;
    Alcotest.test_case "retier skips unknown endpoints" `Quick test_retier_skips_unknown_endpoints;
    Alcotest.test_case "retier unchanged replay" `Quick test_retier_unchanged_replay;
    Alcotest.test_case "retier warm suffix" `Quick test_retier_warm_suffix;
    Alcotest.test_case "retier forced fallback" `Quick test_retier_forced_fallback;
    Alcotest.test_case "retier cold_every=1 all cold" `Quick test_retier_cold_every_one;
    Alcotest.test_case "retier drill counts solves only" `Quick test_retier_drill_counts_solves_only;
    Alcotest.test_case "retier flow churn warm-starts" `Quick test_retier_flow_churn;
    Alcotest.test_case "retier cache roundtrip" `Quick test_retier_cache_roundtrip;
    Alcotest.test_case "retier logit all-or-nothing" `Quick test_retier_logit_all_or_nothing;
    Alcotest.test_case "retier rejects linear" `Quick test_retier_rejects_linear;
    Alcotest.test_case "shards stable partition" `Quick test_shards_stable_partition;
    Alcotest.test_case "shards merge matches single" `Quick test_shards_merge_matches_single;
    Alcotest.test_case "daemon determinism (warm == cold)" `Quick test_daemon_determinism;
    Alcotest.test_case "daemon shard equality" `Quick test_daemon_shard_equality;
    Alcotest.test_case "daemon shard pool" `Quick test_daemon_shard_pool;
    Alcotest.test_case "daemon out-of-order tail" `Quick test_daemon_out_of_order;
    Alcotest.test_case "daemon dedup and late" `Quick test_daemon_dedup_and_late;
    Alcotest.test_case "daemon wire counters" `Quick test_daemon_wire_counters;
    Alcotest.test_case "daemon validation" `Quick test_daemon_validation;
  ]
