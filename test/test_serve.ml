(* The streaming pricing service (lib/serve): sliding-window demand,
   incremental re-tiering with warm-started DP, and the daemon loop.
   The acceptance property is determinism: posted tiers are cut-for-cut
   what a from-scratch solve of the same window produces, across long
   runs that include warm solves, unchanged replays, cache hits and
   forced divergence drills. *)

open Serve

let ip = Flowgen.Ipv4.of_int

(* --- Clock -------------------------------------------------------------- *)

let test_manual_clock () =
  let clock, set = Clock.manual ~start:5. () in
  Alcotest.(check (float 0.)) "start" 5. (Clock.now clock);
  set 42.5;
  Alcotest.(check (float 0.)) "set" 42.5 (Clock.now clock)

(* --- Window ------------------------------------------------------------- *)

let wparams ?(bin_s = 10) ?(bins = 6) ?(decay = Window.No_decay) () =
  { Window.bin_s; bins; decay }

let test_window_mean_rate () =
  let p = wparams () in
  let w = Window.create p in
  (* 600 kB in one bin of a 6 x 10 s window: 600e3 * 8 / (60 * 1e6). *)
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:600_000. ~bin:0);
  let s = Window.snapshot w in
  Alcotest.(check int) "one flow" 1 (Array.length s.Window.s_flows);
  Alcotest.(check (float 1e-9)) "mean Mbps" 0.08
    s.Window.s_flows.(0).Window.f_mbps

let test_window_accumulates_and_slides () =
  let w = Window.create (wparams ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:100. ~bin:0);
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:100. ~bin:1);
  let rate_before = (Window.snapshot w).Window.s_flows.(0).Window.f_mbps in
  (* Slide until bin 0 and 1 are out of the window: nothing left. *)
  Window.advance_to w ~bin:7;
  let s = Window.snapshot w in
  Alcotest.(check bool) "had rate" true (rate_before > 0.);
  Alcotest.(check int) "fully decayed flow omitted" 0
    (Array.length s.Window.s_flows);
  (* The flow table still remembers the pair (uid stability). *)
  Alcotest.(check int) "flow count" 1 (Window.flow_count w)

let test_window_late_drop () =
  let w = Window.create (wparams ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:1. ~bin:10);
  let kept = Window.observe w ~src:(ip 3) ~dst:(ip 4) ~bytes:1. ~bin:4 in
  Alcotest.(check bool) "late dropped" false kept;
  Alcotest.(check int) "late counted" 1 (Window.late w);
  (* Oldest in-window bin is still accepted. *)
  let kept = Window.observe w ~src:(ip 3) ~dst:(ip 4) ~bytes:1. ~bin:5 in
  Alcotest.(check bool) "in-window kept" true kept

let test_window_ring_reuse () =
  (* A slot reused after a full wrap must not leak old bytes. *)
  let w = Window.create (wparams ~bins:4 ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:1000. ~bin:0);
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:24. ~bin:4);
  (* bin 4 maps to slot 0; the 1000 bytes of bin 0 must be gone. *)
  let s = Window.snapshot w in
  let expect = 24. *. 8. /. (4. *. 10. *. 1e6) in
  Alcotest.(check (float 1e-12)) "only new bytes" expect
    s.Window.s_flows.(0).Window.f_mbps

let test_window_exponential_decay () =
  let decay = Window.Exponential { half_life_bins = 1. } in
  let w = Window.create (wparams ~decay ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:64. ~bin:0);
  ignore (Window.observe w ~src:(ip 3) ~dst:(ip 4) ~bytes:64. ~bin:2);
  Window.advance_to w ~bin:2;
  let s = Window.snapshot w in
  let rate u =
    let r =
      Array.to_list s.Window.s_flows
      |> List.find (fun f -> f.Window.f_uid = u)
    in
    r.Window.f_mbps
  in
  (* Same bytes, two bins apart, half-life one bin: 4x ratio. *)
  Alcotest.(check (float 1e-9)) "half-life ratio" 4. (rate 1 /. rate 0)

let test_window_diurnal_weights () =
  let decay = Window.Diurnal { amplitude = 0.5; peak_bin = 2 } in
  let w = Window.create (wparams ~bins:4 ~decay ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:100. ~bin:2);
  ignore (Window.observe w ~src:(ip 3) ~dst:(ip 4) ~bytes:100. ~bin:3);
  Window.advance_to w ~bin:3;
  let s = Window.snapshot w in
  let peak = s.Window.s_flows.(0).Window.f_mbps in
  let off = s.Window.s_flows.(1).Window.f_mbps in
  (* Peak-bin bytes weigh 1 + 0.5, the quarter-cycle bin 1.0. *)
  Alcotest.(check (float 1e-9)) "peak emphasis" 1.5 (peak /. off)

let test_window_occupancy () =
  let w = Window.create (wparams ~bins:4 ()) in
  ignore (Window.observe w ~src:(ip 1) ~dst:(ip 2) ~bytes:1. ~bin:0);
  Alcotest.(check (float 1e-9)) "one bin" 0.25
    (Window.snapshot w).Window.s_occupancy;
  Window.advance_to w ~bin:9;
  Alcotest.(check (float 1e-9)) "capped" 1.
    (Window.snapshot w).Window.s_occupancy

let test_window_validation () =
  let check name p =
    Alcotest.check_raises name (Invalid_argument "") (fun () ->
        try ignore (Window.create p) with Invalid_argument _ ->
          raise (Invalid_argument ""))
  in
  check "bins" (wparams ~bins:0 ());
  check "bin_s" (wparams ~bin_s:0 ());
  check "half-life"
    (wparams ~decay:(Window.Exponential { half_life_bins = 0. }) ());
  check "amplitude"
    (wparams ~decay:(Window.Diurnal { amplitude = 1.5; peak_bin = 0 }) ())

(* --- Ingest ------------------------------------------------------------- *)

let small_workload =
  lazy
    (Flowgen.Workload.generate
       (Netsim.Presets.eu_isp ())
       {
         Flowgen.Workload.n_flows = 60;
         aggregate_gbps = 2.;
         locality_scale = 50.;
         locality_spread = 1.0;
         demand_cv = 1.0;
         demand_distance_exponent = 1.0;
         local_tail_miles = 30.;
         on_net_fraction = 0.5;
         distance_mode = `Path;
         seed = 77;
       })

let test_ingest_sorted_and_replayed () =
  let w = Lazy.force small_workload in
  let ing = Ingest.of_workload ~days:2 ~seed:3 w in
  let rec drain acc last n =
    match Ingest.next ing with
    | None -> (acc, n)
    | Some r ->
        Alcotest.(check bool) "nondecreasing" true
          (r.Flowgen.Netflow.first_s >= last);
        drain (acc + r.Flowgen.Netflow.first_s) r.Flowgen.Netflow.first_s
          (n + 1)
    | exception e -> raise e
  in
  let _, n = drain 0 min_int 0 in
  Alcotest.(check int) "both days yielded" (Ingest.total ing) n;
  Alcotest.(check bool) "two days of records" true (n > 0 && n mod 2 = 0)

let test_ingest_day_shift () =
  let w = Lazy.force small_workload in
  let one = Ingest.of_workload ~days:1 ~seed:3 w in
  let two = Ingest.of_workload ~days:2 ~seed:3 w in
  let day1 = ref [] in
  let rec skip_day1 () =
    match Ingest.next two with
    | Some r when r.Flowgen.Netflow.first_s < Flowgen.Netflow.day_seconds ->
        skip_day1 ()
    | other -> other
  in
  let rec drain1 () =
    match Ingest.next one with
    | Some r ->
        day1 := r :: !day1;
        drain1 ()
    | None -> ()
  in
  drain1 ();
  (* First record of day 2 is the first template record, shifted. *)
  let first_template = List.nth (List.rev !day1) 0 in
  match skip_day1 () with
  | Some r ->
      Alcotest.(check int) "shifted by a day"
        (first_template.Flowgen.Netflow.first_s + Flowgen.Netflow.day_seconds)
        r.Flowgen.Netflow.first_s;
      Alcotest.(check (float 0.)) "same bytes"
        first_template.Flowgen.Netflow.bytes r.Flowgen.Netflow.bytes
  | None -> Alcotest.fail "day 2 missing"

(* --- Stats -------------------------------------------------------------- *)

let test_percentile_nearest_rank () =
  let a = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. |] in
  Alcotest.(check (float 0.)) "p50" 5. (Stats.percentile a ~p:50.);
  Alcotest.(check (float 0.)) "p99" 10. (Stats.percentile a ~p:99.);
  Alcotest.(check (float 0.)) "p0" 1. (Stats.percentile a ~p:0.);
  Alcotest.(check (float 0.)) "empty" 0. (Stats.percentile [||] ~p:50.)

let test_stats_rates () =
  let s = Stats.create () in
  Stats.observe s ~solve:`Cold ~latency_s:0.002 ~evaluations:10 ~fallback:false;
  Stats.observe s ~solve:`Warm ~latency_s:0.001 ~evaluations:5 ~fallback:false;
  Stats.observe s ~solve:`Unchanged ~latency_s:0.0005 ~evaluations:0
    ~fallback:false;
  Stats.observe s ~solve:`Cached ~latency_s:0.0001 ~evaluations:0
    ~fallback:false;
  Stats.observe s ~solve:`Cold ~latency_s:0.003 ~evaluations:12 ~fallback:true;
  let sum = Stats.summary s in
  Alcotest.(check int) "retiers" 5 sum.Stats.retiers;
  Alcotest.(check int) "fallbacks" 1 sum.Stats.fallbacks;
  Alcotest.(check int) "evaluations" 27 sum.Stats.evaluations;
  (* 2 of the 4 actual solves reused state; the cache hit is excluded. *)
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 sum.Stats.warm_hit_rate;
  Alcotest.(check (float 1e-9)) "p99 = max" sum.Stats.max_ms sum.Stats.p99_ms

(* --- Retier on hand-crafted snapshots ----------------------------------- *)

(* A tiny synthetic universe: 8 flows with distinct distances, metadata
   keyed by endpoint pair, demands set per test. *)
let universe_n = 8

let meta_of src dst =
  let s = Flowgen.Ipv4.to_int src and d = Flowgen.Ipv4.to_int dst in
  if d = 999 then None
  else if s >= 1 && s <= universe_n && d = 100 + s then
    Some
      {
        Retier.m_id = s - 1;
        m_distance_miles = 20. +. (60. *. float_of_int s);
        m_locality = (if s <= 4 then Tiered.Flow.National else Tiered.Flow.International);
        m_on_net = s mod 2 = 0;
      }
  else None

let snap_of ?(bin = 0) demands =
  let flows =
    List.mapi
      (fun i q ->
        { Window.f_src = ip (i + 1); f_dst = ip (100 + i + 1); f_uid = i; f_mbps = q })
      demands
    |> List.filter (fun f -> f.Window.f_mbps > 0.)
  in
  {
    Window.s_bin = bin;
    s_flows = Array.of_list flows;
    s_occupancy = 1.;
    s_late = 0;
  }

let rparams ?(spec = Tiered.Market.Ced) ?(n_bundles = 3) ?(cold_every = 0)
    ?(use_cache = false) () =
  {
    Retier.spec;
    alpha = 2.0;
    p0 = 30.;
    n_bundles;
    cost_model = Tiered.Cost_model.concave ~theta:0.5;
    samples = 8;
    cold_every;
    use_cache;
  }

let base_demands = [ 40.; 25.; 9.; 31.; 5.; 17.; 52.; 3. ]

let check_cuts = Alcotest.(check (list int))
let check_prices = Alcotest.(check (array (float 0.)))

let check_matches_cold t snap (o : Retier.outcome) =
  let cold = Retier.solve_cold t snap in
  check_cuts "cuts = from-scratch" cold.Retier.o_cuts o.Retier.o_cuts;
  check_prices "prices = from-scratch" cold.Retier.o_prices o.Retier.o_prices;
  Alcotest.(check (float 0.)) "profit = from-scratch" cold.Retier.o_profit
    o.Retier.o_profit

let test_retier_empty_window () =
  let t = Retier.create (rparams ()) ~meta_of in
  let o = Retier.retier t (snap_of []) in
  Alcotest.(check int) "no flows" 0 o.Retier.o_n_flows;
  Alcotest.(check (list int)) "no cuts" [] o.Retier.o_cuts;
  Alcotest.(check bool) "not calibrated" false (Retier.calibrated t)

let test_retier_skips_unknown_endpoints () =
  let t = Retier.create (rparams ()) ~meta_of in
  let snap = snap_of base_demands in
  let unknown =
    { Window.f_src = ip 50; f_dst = ip 999; f_uid = 99; f_mbps = 7. }
  in
  let snap =
    { snap with Window.s_flows = Array.append snap.Window.s_flows [| unknown |] }
  in
  let o = Retier.retier t snap in
  Alcotest.(check int) "skipped" 1 o.Retier.o_skipped;
  Alcotest.(check int) "priced the rest" universe_n o.Retier.o_n_flows

let test_retier_unchanged_replay () =
  let t = Retier.create (rparams ()) ~meta_of in
  let o1 = Retier.retier t (snap_of base_demands) in
  let o2 = Retier.retier t (snap_of ~bin:1 base_demands) in
  Alcotest.(check bool) "first solve cold" true (o1.Retier.o_solve = `Cold);
  Alcotest.(check bool) "replayed" true (o2.Retier.o_solve = `Unchanged);
  Alcotest.(check int) "no evaluations" 0 o2.Retier.o_evaluations;
  Alcotest.(check int) "dirty_from = n" universe_n o2.Retier.o_dirty_from;
  check_cuts "same cuts" o1.Retier.o_cuts o2.Retier.o_cuts

let test_retier_warm_suffix () =
  let t = Retier.create (rparams ()) ~meta_of in
  ignore (Retier.retier t (snap_of base_demands));
  (* Bump one demand: only that flow's valuation changes under CED, so
     the dirty suffix starts at its cost-order position, not 0. *)
  let bumped = List.mapi (fun i q -> if i = 6 then q +. 5. else q) base_demands in
  let snap = snap_of ~bin:1 bumped in
  let o = Retier.retier t snap in
  Alcotest.(check bool) "warm" true (o.Retier.o_solve = `Warm);
  Alcotest.(check bool) "suffix only" true
    (o.Retier.o_dirty_from > 0 && o.Retier.o_dirty_from < universe_n);
  Alcotest.(check bool) "no spot-check trip" false o.Retier.o_fallback;
  check_matches_cold t snap o

let test_retier_forced_fallback () =
  let t = Retier.create (rparams ~cold_every:2 ()) ~meta_of in
  ignore (Retier.retier t (snap_of base_demands));
  let bumped = List.map (fun q -> q +. 1.) base_demands in
  let snap = snap_of ~bin:1 bumped in
  (* Second solve: the drill forces the divergence path. *)
  let o = Retier.retier t snap in
  Alcotest.(check bool) "cold via drill" true (o.Retier.o_solve = `Cold);
  Alcotest.(check bool) "fallback flagged" true o.Retier.o_fallback;
  check_matches_cold t snap o

let test_retier_flow_churn () =
  (* Flows appearing/disappearing change n: the state is rebuilt cold
     and the result still matches from-scratch. *)
  let t = Retier.create (rparams ()) ~meta_of in
  ignore (Retier.retier t (snap_of base_demands));
  let shrunk = List.mapi (fun i q -> if i = 2 then 0. else q) base_demands in
  let snap = snap_of ~bin:1 shrunk in
  let o = Retier.retier t snap in
  Alcotest.(check int) "one flow gone" (universe_n - 1) o.Retier.o_n_flows;
  Alcotest.(check bool) "cold rebuild" true (o.Retier.o_solve = `Cold);
  check_matches_cold t snap o;
  (* And back. *)
  let snap = snap_of ~bin:2 base_demands in
  let o = Retier.retier t snap in
  Alcotest.(check bool) "cold again" true (o.Retier.o_solve = `Cold);
  check_matches_cold t snap o

let test_retier_cache_roundtrip () =
  let t = Retier.create (rparams ~use_cache:true ()) ~meta_of in
  let d2 = List.map (fun q -> q *. 1.5) base_demands in
  let o1 = Retier.retier t (snap_of base_demands) in
  let _o2 = Retier.retier t (snap_of ~bin:1 d2) in
  (* Revisiting the first demand pattern hits the cache... *)
  let o3 = Retier.retier t (snap_of ~bin:2 base_demands) in
  Alcotest.(check bool) "cache hit" true (o3.Retier.o_solve = `Cached);
  check_cuts "cached cuts" o1.Retier.o_cuts o3.Retier.o_cuts;
  check_prices "cached prices" o1.Retier.o_prices o3.Retier.o_prices;
  (* ...and leaves the retained state on the last *solved* window, so
     revisiting that one replays instead of re-solving. *)
  let o4 = Retier.retier t (snap_of ~bin:3 d2) in
  Alcotest.(check bool) "state untouched by hit" true
    (o4.Retier.o_solve = `Unchanged || o4.Retier.o_solve = `Cached)

let test_retier_logit_all_or_nothing () =
  let spec = Tiered.Market.Logit { s0 = 0.3 } in
  let t = Retier.create (rparams ~spec ()) ~meta_of in
  ignore (Retier.retier t (snap_of base_demands));
  let o_same = Retier.retier t (snap_of ~bin:1 base_demands) in
  Alcotest.(check bool) "identical replays" true
    (o_same.Retier.o_solve = `Unchanged);
  let bumped = List.mapi (fun i q -> if i = 6 then q +. 5. else q) base_demands in
  let snap = snap_of ~bin:2 bumped in
  let o = Retier.retier t snap in
  (* Logit never trusts a partial prefix: dirty_from collapses to 0. *)
  Alcotest.(check int) "all-or-nothing" 0 o.Retier.o_dirty_from;
  check_matches_cold t snap o

let test_retier_rejects_linear () =
  Alcotest.check_raises "linear rejected" (Invalid_argument "")
    (fun () ->
      try
        ignore
          (Retier.create
             (rparams ~spec:(Tiered.Market.Linear { epsilon = 1.2 }) ())
             ~meta_of)
      with Invalid_argument _ -> raise (Invalid_argument ""))

(* --- Daemon end-to-end: warm == cold over a multi-day run ---------------- *)

let test_daemon_determinism () =
  let w = Lazy.force small_workload in
  let window =
    Window.create { Window.bin_s = 3600; bins = 24; decay = Window.No_decay }
  in
  let retier =
    Retier.create
      {
        Retier.spec = Tiered.Market.Ced;
        alpha = 2.0;
        p0 = 30.;
        n_bundles = 4;
        cost_model = Tiered.Cost_model.concave ~theta:0.5;
        samples = 8;
        cold_every = 9;  (* >= 1 forced-divergence drill over the run *)
        use_cache = false;
      }
      ~meta_of:(Retier.meta_of_workload w)
  in
  let clock, _set = Clock.manual () in
  let windows = ref 0 in
  let result =
    Daemon.run
      ~on_retier:(fun snap o ->
        incr windows;
        check_matches_cold retier snap o)
      ~clock ~window ~retier
      { Daemon.every_s = 3600; dedup = true }
      (* Three days: hourly windows repeat with a one-day period once
         the window has slid fully into replayed traffic, so the run
         contains signature-identical (unchanged) windows. *)
      (Ingest.of_workload ~days:3 ~seed:11 w)
  in
  Alcotest.(check bool)
    (Printf.sprintf "at least 20 windows (got %d)" !windows)
    true (!windows >= 20);
  let s = result.Daemon.r_stats in
  Alcotest.(check bool) "warm solves happened" true (s.Stats.warm > 0);
  Alcotest.(check bool) "forced fallback happened" true (s.Stats.fallbacks >= 1);
  Alcotest.(check int) "every window posted" !windows s.Stats.retiers;
  (* Day 2 replays day 1's bytes at the same phase, so some windows are
     signature-identical to an already-solved one. *)
  Alcotest.(check bool) "unchanged replays happened" true (s.Stats.unchanged > 0);
  Alcotest.(check bool) "duplicates were suppressed" true
    (result.Daemon.r_run.Stats.dropped_dup > 0);
  Alcotest.(check bool) "no late drops" true
    (result.Daemon.r_run.Stats.late = 0)

let test_daemon_validation () =
  let w = Window.create (wparams ()) in
  let t = Retier.create (rparams ()) ~meta_of in
  let clock, _ = Clock.manual () in
  Alcotest.check_raises "every_s" (Invalid_argument "Serve.Daemon: every_s < 1")
    (fun () ->
      ignore
        (Daemon.run ~clock ~window:w ~retier:t
           { Daemon.every_s = 0; dedup = false }
           (Ingest.of_records [])))

let suite =
  [
    Alcotest.test_case "manual clock" `Quick test_manual_clock;
    Alcotest.test_case "window mean rate" `Quick test_window_mean_rate;
    Alcotest.test_case "window slides" `Quick test_window_accumulates_and_slides;
    Alcotest.test_case "window late drop" `Quick test_window_late_drop;
    Alcotest.test_case "window ring reuse" `Quick test_window_ring_reuse;
    Alcotest.test_case "window exponential decay" `Quick test_window_exponential_decay;
    Alcotest.test_case "window diurnal weights" `Quick test_window_diurnal_weights;
    Alcotest.test_case "window occupancy" `Quick test_window_occupancy;
    Alcotest.test_case "window validation" `Quick test_window_validation;
    Alcotest.test_case "ingest sorted + replayed" `Quick test_ingest_sorted_and_replayed;
    Alcotest.test_case "ingest day shift" `Quick test_ingest_day_shift;
    Alcotest.test_case "percentile nearest rank" `Quick test_percentile_nearest_rank;
    Alcotest.test_case "stats rates" `Quick test_stats_rates;
    Alcotest.test_case "retier empty window" `Quick test_retier_empty_window;
    Alcotest.test_case "retier skips unknown endpoints" `Quick test_retier_skips_unknown_endpoints;
    Alcotest.test_case "retier unchanged replay" `Quick test_retier_unchanged_replay;
    Alcotest.test_case "retier warm suffix" `Quick test_retier_warm_suffix;
    Alcotest.test_case "retier forced fallback" `Quick test_retier_forced_fallback;
    Alcotest.test_case "retier flow churn" `Quick test_retier_flow_churn;
    Alcotest.test_case "retier cache roundtrip" `Quick test_retier_cache_roundtrip;
    Alcotest.test_case "retier logit all-or-nothing" `Quick test_retier_logit_all_or_nothing;
    Alcotest.test_case "retier rejects linear" `Quick test_retier_rejects_linear;
    Alcotest.test_case "daemon determinism (warm == cold)" `Quick test_daemon_determinism;
    Alcotest.test_case "daemon validation" `Quick test_daemon_validation;
  ]
