(* Engine.Remote: the TCP fleet backend, exercised end-to-end over
   loopback workers (this test binary re-invokes itself through
   --engine-remote-worker=connect:…; Test_main calls
   Remote.maybe_run_worker first). Mirrors the subprocess-backend
   tests in Test_engine: identical task semantics, plus the TCP-only
   paths — the CAS side-channel and the standalone daemon. *)

open Tiered

(* The remote tests require the fleet to actually come up. A degraded
   pool would make the self-kill tasks below kill the test process, so
   assert loudly instead. *)
let require_remote pool =
  if Engine.Pool.backend pool <> Engine.Pool.Remote then
    Alcotest.fail
      "remote backend unavailable (loopback spawn failed); cannot run this test"

(* (a) Byte-identity across substrates: the same grid rendered through
   a 2-worker loopback fleet equals the serial rendering exactly. *)
let test_remote_backend_identical () =
  let grid = List.map Experiment.find [ "table1"; "fig8" ] in
  let serial = Runner.render (Runner.run_experiments ~jobs:1 grid) in
  let remote =
    Runner.render
      (Runner.run_experiments ~backend:Engine.Pool.Remote ~jobs:2 grid)
  in
  Alcotest.(check string) "remote rendering byte-identical" serial remote

(* (b) Fault injection: SIGKILL a fleet worker mid-map. The in-flight
   task is retried on a surviving/replacement worker, results are
   byte-identical to an undisturbed run, and the restart is counted. *)
let test_remote_worker_kill_recovers () =
  Engine.Pool.with_pool ~backend:Engine.Pool.Remote ~jobs:2 ~retries:2
    (fun pool ->
      require_remote pool;
      let sentinel = Filename.temp_file "engine-remote-kill" ".sentinel" in
      Sys.remove sentinel;
      Fun.protect ~finally:(fun () ->
          try Sys.remove sentinel with Sys_error _ -> ())
      @@ fun () ->
      let f i =
        if i = 3 && not (Sys.file_exists sentinel) then begin
          let oc = open_out sentinel in
          close_out oc;
          Unix.kill (Unix.getpid ()) Sys.sigkill
        end;
        i * 2
      in
      let out = Engine.Pool.map pool f (Array.init 8 (fun i -> i)) in
      Alcotest.(check (array int))
        "results identical despite the crash"
        (Array.init 8 (fun i -> i * 2))
        out;
      Alcotest.(check bool)
        (Printf.sprintf "restart recorded (%d)" (Engine.Pool.restarts pool))
        true
        (Engine.Pool.restarts pool >= 1);
      let again = Engine.Pool.map pool (fun i -> i + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "fleet alive after crash" [| 2; 3; 4 |] again)

(* (c) Retry exhaustion is deterministic: attempts = retries + 1, the
   lowest failing index surfaces, the map neither hangs nor poisons
   the other tasks. *)
let test_remote_retry_exhaustion () =
  Engine.Pool.with_pool ~backend:Engine.Pool.Remote ~jobs:2 ~retries:1
    (fun pool ->
      require_remote pool;
      let f i =
        if i = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
        i + 10
      in
      match Engine.Pool.map pool f [| 0; 1; 2; 3 |] with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Engine.Pool.Task_failed { index; exn; _ } -> (
          Alcotest.(check int) "deterministic failing index" 1 index;
          match exn with
          | Engine.Remote.Worker_lost { attempts; _ } ->
              Alcotest.(check int) "retries=1 means two attempts" 2 attempts
          | other ->
              Alcotest.failf "expected Worker_lost, got %s"
                (Printexc.to_string other)))

(* (d) A task exception inside a fleet worker is a failure report, not
   a crash: no retry, surfaced as Remote_failure with the printed
   exception. *)
let test_remote_task_failure () =
  Engine.Pool.with_pool ~backend:Engine.Pool.Remote ~jobs:2 ~retries:2
    (fun pool ->
      require_remote pool;
      match
        Engine.Pool.map pool
          (fun i -> if i = 2 then failwith "remote boom" else i)
          [| 0; 1; 2; 3 |]
      with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Engine.Pool.Task_failed { index; exn; _ } -> (
          Alcotest.(check int) "failing index" 2 index;
          Alcotest.(check int) "a raising task is not a worker loss" 0
            (Engine.Pool.restarts pool);
          match exn with
          | Engine.Remote.Remote_failure { message } ->
              Alcotest.(check string) "printed exception carried over"
                (Printexc.to_string (Failure "remote boom"))
                message
          | other ->
              Alcotest.failf "expected Remote_failure, got %s"
                (Printexc.to_string other)))

(* (e) The CAS side-channel: a worker that misses an artifact fetches
   it from the parent's store by digest over its task connection. The
   parent store is pre-seeded with the marshalled payload; the task's
   compute function raises, so only a successful remote fetch can
   produce the value. *)
let test_remote_cas_fetch () =
  let fleet = Engine.Remote.create (Engine.Remote.Exec 1) in
  Fun.protect ~finally:(fun () -> Engine.Remote.shutdown fleet) @@ fun () ->
  let cache = Engine.Cache.create ~name:"test-remote-cas" ~schema:"v1" () in
  let key = ("artifact", 7) in
  let payload = Engine.Cache.Private.payload_of_value cache "fetched-over-tcp" in
  Engine.Transport.Store.put (Engine.Remote.store fleet)
    ~cache:"test-remote-cas"
    ~key_digest:(Engine.Cache.key_digest key)
    ~payload;
  let out =
    Engine.Remote.map fleet
      (fun () ->
        let c = Engine.Cache.create ~name:"test-remote-cas" ~schema:"v1" () in
        Engine.Cache.find_or_add c ~key:("artifact", 7) (fun () ->
            failwith "compute ran: the remote tier did not serve the artifact"))
      [| () |]
  in
  match out.(0) with
  | Ok v -> Alcotest.(check string) "artifact served by digest" "fetched-over-tcp" v
  | Error (exn, _) ->
      Alcotest.failf "fetch failed: %s" (Printexc.to_string exn)

(* (f) The publish direction: with no disk tier in the parent, a
   worker's computed artifact lands in the parent's in-memory store
   under the cache name and key digest. *)
let test_remote_cas_publish () =
  let fleet = Engine.Remote.create (Engine.Remote.Exec 1) in
  Fun.protect ~finally:(fun () -> Engine.Remote.shutdown fleet) @@ fun () ->
  let key = ("published", 1) in
  let out =
    Engine.Remote.map fleet
      (fun () ->
        let c = Engine.Cache.create ~name:"test-remote-pub" ~schema:"v1" () in
        Engine.Cache.find_or_add c ~key:("published", 1) (fun () -> "made-remotely"))
      [| () |]
  in
  (match out.(0) with
  | Ok v -> Alcotest.(check string) "task result" "made-remotely" v
  | Error (exn, _) ->
      Alcotest.failf "task failed: %s" (Printexc.to_string exn));
  match
    Engine.Transport.Store.get (Engine.Remote.store fleet)
      ~cache:"test-remote-pub"
      ~key_digest:(Engine.Cache.key_digest key)
  with
  | None -> Alcotest.fail "worker artifact was not published to the parent"
  | Some payload ->
      Alcotest.(check bool) "published payload is non-empty" true
        (String.length payload > 0)

(* (g) Spec parsing: the --workers syntax. *)
let test_parse_spec () =
  (match Engine.Remote.parse_spec "exec:3" with
  | Ok (Engine.Remote.Exec 3) -> ()
  | Ok _ -> Alcotest.fail "exec:3 parsed to the wrong spec"
  | Error msg -> Alcotest.failf "exec:3 rejected: %s" msg);
  (match Engine.Remote.parse_spec "10.0.0.1:7000,host-b:7001" with
  | Ok (Engine.Remote.Addrs [ ("10.0.0.1", 7000); ("host-b", 7001) ]) -> ()
  | Ok _ -> Alcotest.fail "address list parsed to the wrong spec"
  | Error msg -> Alcotest.failf "address list rejected: %s" msg);
  List.iter
    (fun bad ->
      match Engine.Remote.parse_spec bad with
      | Ok _ -> Alcotest.failf "%S parsed but should not" bad
      | Error _ -> ())
    [ ""; "exec:0"; "exec:x"; "nohost"; "host:"; "host:0"; "host:notaport" ]

(* (h) The standalone daemon path: a worker started with serve_forever
   semantics (here: a listener the fleet connects out to) serves a
   map, survives the parent disconnecting, and serves a second parent
   — in-memory caches staying warm across connections. *)
let test_remote_daemon_reconnect () =
  (* Bind the daemon port first so the fleet has something to dial. *)
  let exe = Sys.executable_name in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let port =
    (* Pick a free port by binding an ephemeral listener, reading the
       port back, and closing it — a race in principle, but the daemon
       child rebinds it immediately. *)
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt s Unix.SO_REUSEADDR true;
    Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname s with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    Unix.close s;
    p
  in
  let pid =
    Unix.create_process exe
      [| exe; "--engine-remote-worker=listen:" ^ string_of_int port |]
      null Unix.stderr Unix.stderr
  in
  Unix.close null;
  let finally () =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
  in
  Fun.protect ~finally @@ fun () ->
  let addrs = Engine.Remote.Addrs [ ("127.0.0.1", port) ] in
  let connect_with_patience () =
    (* The daemon child needs a moment to bind. *)
    let rec go tries =
      match Engine.Remote.create addrs with
      | fleet -> fleet
      | exception Engine.Remote.Spawn_failure _ when tries > 0 ->
          Unix.sleepf 0.1;
          go (tries - 1)
    in
    go 50
  in
  let fleet = connect_with_patience () in
  let out = Engine.Remote.map fleet (fun i -> i * 3) [| 1; 2; 3 |] in
  Alcotest.(check bool) "first connection maps" true
    (Array.for_all Result.is_ok out);
  Engine.Remote.shutdown fleet;
  (* Second parent: the daemon must accept a fresh connection. *)
  let fleet2 = connect_with_patience () in
  let out2 = Engine.Remote.map fleet2 (fun i -> i + 1) [| 10 |] in
  (match out2.(0) with
  | Ok v -> Alcotest.(check int) "second connection maps" 11 v
  | Error (exn, _) ->
      Alcotest.failf "second connection failed: %s" (Printexc.to_string exn));
  Engine.Remote.shutdown fleet2

(* (i) Shared-secret enforcement on the daemon path: a daemon holding
   a token serves a parent presenting the same token and rejects one
   presenting another — the rejection happens at the preamble, before
   any closure-carrying frame could be unmarshalled. *)
let test_remote_daemon_token_auth () =
  let exe = Sys.executable_name in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let port =
    let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt s Unix.SO_REUSEADDR true;
    Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    let p =
      match Unix.getsockname s with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    Unix.close s;
    p
  in
  let env =
    let prefix = Engine.Remote.token_env ^ "=" in
    let plen = String.length prefix in
    let keep =
      Array.to_list (Unix.environment ())
      |> List.filter (fun kv ->
             not
               (String.length kv >= plen
               && String.equal (String.sub kv 0 plen) prefix))
    in
    Array.of_list (keep @ [ prefix ^ "s3cret" ])
  in
  let pid =
    Unix.create_process_env exe
      [| exe; "--engine-remote-worker=listen:" ^ string_of_int port |]
      env null Unix.stderr Unix.stderr
  in
  Unix.close null;
  let finally () =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
  in
  Fun.protect ~finally @@ fun () ->
  let addrs = Engine.Remote.Addrs [ ("127.0.0.1", port) ] in
  (* Correct token (with patience for the daemon to bind). *)
  let fleet =
    let rec go tries =
      match Engine.Remote.create ~token:"s3cret" addrs with
      | fleet -> fleet
      | exception Engine.Remote.Spawn_failure _ when tries > 0 ->
          Unix.sleepf 0.1;
          go (tries - 1)
    in
    go 50
  in
  let out = Engine.Remote.map fleet (fun i -> i * 7) [| 6 |] in
  (match out.(0) with
  | Ok v -> Alcotest.(check int) "authenticated parent maps" 42 v
  | Error (exn, _) ->
      Alcotest.failf "authenticated map failed: %s" (Printexc.to_string exn));
  Engine.Remote.shutdown fleet;
  (* Wrong token: the daemon is demonstrably up (we just used it), so
     Spawn_failure here can only be the auth rejection. *)
  (match Engine.Remote.create ~token:"wrong" addrs with
  | fleet ->
      Engine.Remote.shutdown fleet;
      Alcotest.fail "daemon accepted a parent with the wrong token"
  | exception Engine.Remote.Spawn_failure _ -> ());
  (* And no token at all is equally rejected. *)
  match Engine.Remote.create ~token:"" addrs with
  | fleet ->
      Engine.Remote.shutdown fleet;
      Alcotest.fail "daemon accepted a parent with no token"
  | exception Engine.Remote.Spawn_failure _ -> ()

(* (j) Binding beyond loopback without a shared secret is refused
   outright — an open port accepts closures, i.e. arbitrary code. *)
let test_serve_forever_refuses_open_bind_without_token () =
  match Engine.Remote.serve_forever ~bind:"0.0.0.0" ~token:"" ~port:1 with
  | _ -> Alcotest.fail "serve_forever bound 0.0.0.0 without a token"
  | exception Failure _ -> ()

let suite =
  [
    Alcotest.test_case "remote backend renders byte-identically" `Slow
      test_remote_backend_identical;
    Alcotest.test_case "remote backend recovers from a killed worker" `Quick
      test_remote_worker_kill_recovers;
    Alcotest.test_case "remote backend exhausts retries deterministically"
      `Quick test_remote_retry_exhaustion;
    Alcotest.test_case "remote backend reports task exceptions" `Quick
      test_remote_task_failure;
    Alcotest.test_case "workers fetch artifacts from the parent store" `Quick
      test_remote_cas_fetch;
    Alcotest.test_case "workers publish artifacts to the parent store" `Quick
      test_remote_cas_publish;
    Alcotest.test_case "--workers spec parsing" `Quick test_parse_spec;
    Alcotest.test_case "standalone daemon serves successive parents" `Quick
      test_remote_daemon_reconnect;
    Alcotest.test_case "standalone daemon enforces the shared secret" `Quick
      test_remote_daemon_token_auth;
    Alcotest.test_case "non-loopback bind requires a shared secret" `Quick
      test_serve_forever_refuses_open_bind_without_token;
  ]
