open Tiered

let test_names_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check bool) (Strategy.name s) true (Strategy.of_name (Strategy.name s) = s))
    Strategy.all;
  Alcotest.check_raises "unknown" (Invalid_argument "Strategy.of_name: unknown strategy x")
    (fun () -> ignore (Strategy.of_name "x"))

let test_token_bucket_paper_example () =
  (* The paper's worked example: demands 30, 10, 10, 10 into two bundles
     puts the big flow alone. *)
  let weights = [| 30.; 10.; 10.; 10. |] in
  let bundles = Strategy.token_bucket ~weights ~order:[| 0; 1; 2; 3 |] ~n_bundles:2 in
  Alcotest.(check int) "two bundles" 2 (Bundle.count bundles);
  let groups = (bundles :> int array array) in
  Alcotest.(check (array int)) "big flow alone" [| 0 |] groups.(0);
  Alcotest.(check (array int)) "rest together" [| 1; 2; 3 |] groups.(1)

let test_token_bucket_overdraft_carries () =
  (* One huge flow overdrafts its budget; the deficit carries forward, so
     the middle bundle only gets one flow (the "empty bundle accepts one"
     rule) and the tail collects in the last bundle. *)
  let weights = [| 100.; 1.; 1.; 1. |] in
  let bundles = Strategy.token_bucket ~weights ~order:[| 0; 1; 2; 3 |] ~n_bundles:3 in
  let groups = (bundles :> int array array) in
  Alcotest.(check int) "three bundles" 3 (Bundle.count bundles);
  Alcotest.(check (array int)) "giant alone" [| 0 |] groups.(0);
  Alcotest.(check (array int)) "single flow despite deficit" [| 1 |] groups.(1);
  Alcotest.(check (array int)) "tail" [| 2; 3 |] groups.(2)

let test_token_bucket_equal_weights () =
  let weights = Array.make 6 1. in
  let bundles = Strategy.token_bucket ~weights ~order:[| 0; 1; 2; 3; 4; 5 |] ~n_bundles:3 in
  Alcotest.(check (array int)) "even split" [| 2; 2; 2 |] (Bundle.sizes bundles)

let test_all_strategies_valid_partitions () =
  List.iter
    (fun m ->
      List.iter
        (fun strategy ->
          List.iter
            (fun b ->
              let bundles = Strategy.apply strategy m ~n_bundles:b in
              (* Validity is enforced by Bundle's smart constructor; check
                 bundle count within limit. *)
              Alcotest.(check bool)
                (Strategy.name strategy ^ " count")
                true
                (Bundle.count bundles <= b || b > Market.n_flows m))
            [ 1; 2; 3; 5; 8 ])
        Strategy.all)
    [ Fixtures.ced_market (); Fixtures.logit_market () ]

let test_cost_division_ranges () =
  let m = Fixtures.ced_market () in
  let bundles = Strategy.apply Strategy.Cost_division m ~n_bundles:2 in
  let cmax = Numerics.Stats.max m.Market.costs in
  let groups = (bundles :> int array array) in
  Array.iter
    (fun group ->
      let costs = Array.map (fun i -> m.Market.costs.(i)) group in
      let lo = Numerics.Stats.min costs and hi = Numerics.Stats.max costs in
      (* All members fall in the same half of [0, cmax]. *)
      Alcotest.(check bool) "same range" true
        (Float.floor (lo /. (cmax /. 2.) -. 1e-12) >= Float.floor (hi /. (cmax /. 2.) -. 1e-12) -. 1e-9))
    groups

let test_index_division_equal_ranks () =
  let m = Fixtures.ced_market () in
  let bundles = Strategy.apply Strategy.Index_division m ~n_bundles:4 in
  Alcotest.(check (array int)) "equal rank groups" [| 2; 2; 2; 2 |] (Bundle.sizes bundles)

let test_optimal_beats_heuristics () =
  List.iter
    (fun m ->
      let profit strategy b =
        (Pricing.evaluate m (Strategy.apply strategy m ~n_bundles:b)).Pricing.profit
      in
      List.iter
        (fun b ->
          let best = profit Strategy.Optimal b in
          List.iter
            (fun s ->
              if profit s b > best +. 1e-9 *. abs_float best then
                Alcotest.failf "%s beats optimal at B=%d" (Strategy.name s) b)
            Strategy.all)
        [ 2; 3; 4 ])
    [ Fixtures.ced_market (); Fixtures.logit_market () ]

(* The Optimal strategy now runs on the divide-and-conquer Segdp kernel;
   on the exhaustive fixture markets also pin it cut-for-cut against the
   exact quadratic DP so the cross-check covers the fast path too. *)
let check_kernels_agree m ~n_bundles =
  let _order, seg_value, regions = Strategy.dp_inputs m in
  let n = Market.n_flows m in
  let fast = Numerics.Segdp.solve ~regions ~n ~n_bundles seg_value in
  let exact = Numerics.Segdp.solve_quadratic ~n ~n_bundles seg_value in
  Alcotest.(check (list int))
    (Printf.sprintf "kernel cuts B=%d" n_bundles)
    exact.Numerics.Segdp.cuts fast.Numerics.Segdp.cuts

let test_optimal_matches_exhaustive_ced () =
  (* The DP's contiguity-in-cost argument is exact for CED: cross-check
     against true exhaustive set-partition search. *)
  let flows =
    Fixtures.flows_of_spec [ (50., 5.); (20., 60.); (10., 300.); (5., 1200.); (80., 15.) ]
  in
  let m = Fixtures.ced_market ~flows () in
  List.iter
    (fun b ->
      let dp = (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b)).Pricing.profit in
      let ex = (Pricing.evaluate m (Strategy.exhaustive_optimal m ~n_bundles:b)).Pricing.profit in
      Alcotest.(check (float 1e-6)) (Printf.sprintf "B=%d" b) ex dp;
      check_kernels_agree m ~n_bundles:b)
    [ 1; 2; 3 ]

let test_optimal_close_to_exhaustive_logit () =
  let flows =
    Fixtures.flows_of_spec [ (50., 5.); (20., 60.); (10., 300.); (5., 1200.); (80., 15.) ]
  in
  let m = Fixtures.logit_market ~flows () in
  List.iter
    (fun b ->
      let dp = (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b)).Pricing.profit in
      let ex = (Pricing.evaluate m (Strategy.exhaustive_optimal m ~n_bundles:b)).Pricing.profit in
      if (ex -. dp) /. abs_float ex > 1e-6 then
        Alcotest.failf "logit DP off at B=%d: %f vs %f" b dp ex)
    [ 1; 2; 3 ]

let test_exhaustive_guard () =
  let flows =
    Array.init 13 (fun id -> Flow.make ~id ~demand_mbps:1. ~distance_miles:10. ())
  in
  let m = Fixtures.ced_market ~flows () in
  Alcotest.check_raises "too many flows"
    (Invalid_argument "Strategy.exhaustive_optimal: too many flows (max 12)") (fun () ->
      ignore (Strategy.exhaustive_optimal m ~n_bundles:2))

let test_class_aware_never_mixes_classes () =
  let m =
    Market.fit ~spec:Market.Ced ~alpha:1.1 ~p0:20.
      ~cost_model:(Cost_model.destination_type ~theta:0.3)
      (Fixtures.flows ())
  in
  let bundles = Strategy.apply Strategy.Profit_weighted_classes m ~n_bundles:4 in
  let groups = (bundles :> int array array) in
  Array.iter
    (fun group ->
      let classes =
        Array.map
          (fun i -> Cost_model.is_on_net ~theta:0.3 m.Market.flows.(i).Flow.id)
          group
      in
      let first = classes.(0) in
      Array.iter
        (fun c -> if c <> first then Alcotest.fail "mixed on/off-net bundle")
        classes)
    groups

let test_n_bundles_validation () =
  let m = Fixtures.ced_market () in
  Alcotest.check_raises "zero" (Invalid_argument "Strategy.apply: n_bundles < 1")
    (fun () -> ignore (Strategy.apply Strategy.Optimal m ~n_bundles:0))

let test_single_bundle_all_equal () =
  (* With one bundle every strategy produces the same (blended) result. *)
  let m = Fixtures.ced_market () in
  let blended = (Pricing.blended m).Pricing.profit in
  List.iter
    (fun s ->
      let profit = (Pricing.evaluate m (Strategy.apply s m ~n_bundles:1)).Pricing.profit in
      Alcotest.(check (float 1e-9)) (Strategy.name s) blended profit)
    Strategy.all

let prop_optimal_monotone_in_bundles =
  QCheck.Test.make ~name:"optimal profit monotone in bundle count" ~count:30
    QCheck.(
      list_of_size Gen.(3 -- 9)
        (pair (float_range 1. 50.) (float_range 1. 2000.)))
    (fun spec ->
      let m = Fixtures.ced_market ~flows:(Fixtures.flows_of_spec spec) () in
      let profit b =
        (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b)).Pricing.profit
      in
      let p2 = profit 2 and p3 = profit 3 and p4 = profit 4 in
      p2 <= p3 +. 1e-9 && p3 <= p4 +. 1e-9)

let suite =
  [
    Alcotest.test_case "names roundtrip" `Quick test_names_roundtrip;
    Alcotest.test_case "token bucket paper example" `Quick test_token_bucket_paper_example;
    Alcotest.test_case "token bucket overdraft" `Quick test_token_bucket_overdraft_carries;
    Alcotest.test_case "token bucket equal weights" `Quick test_token_bucket_equal_weights;
    Alcotest.test_case "all strategies valid" `Quick test_all_strategies_valid_partitions;
    Alcotest.test_case "cost division ranges" `Quick test_cost_division_ranges;
    Alcotest.test_case "index division ranks" `Quick test_index_division_equal_ranks;
    Alcotest.test_case "optimal beats heuristics" `Quick test_optimal_beats_heuristics;
    Alcotest.test_case "optimal = exhaustive (CED)" `Slow test_optimal_matches_exhaustive_ced;
    Alcotest.test_case "optimal ~ exhaustive (logit)" `Slow test_optimal_close_to_exhaustive_logit;
    Alcotest.test_case "exhaustive size guard" `Quick test_exhaustive_guard;
    Alcotest.test_case "class-aware never mixes" `Quick test_class_aware_never_mixes_classes;
    Alcotest.test_case "n_bundles validation" `Quick test_n_bundles_validation;
    Alcotest.test_case "single bundle equivalence" `Quick test_single_bundle_all_equal;
    QCheck_alcotest.to_alcotest prop_optimal_monotone_in_bundles;
  ]
