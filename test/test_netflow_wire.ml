(* The binary wire codec (Flowgen.Netflow.Wire): NetFlow v5 + minimal
   IPFIX encode/decode round trips, per-exporter sequence accounting,
   and the never-raises contract on truncated or hostile input. *)

open Flowgen.Netflow

let ip = Flowgen.Ipv4.of_int

let rec_ ?(router = 0) ?(src_port = 1000) ?(dst_port = 80) ?(proto = 6)
    ?(packets = 3.) ~src ~dst ~bytes ~first_s ~last_s () =
  {
    src = ip src;
    dst = ip dst;
    src_port;
    dst_port;
    proto;
    bytes;
    packets;
    first_s;
    last_s;
    router;
  }

let check_record name (a : record) (b : record) =
  Alcotest.(check int) (name ^ ": src") (Flowgen.Ipv4.to_int a.src)
    (Flowgen.Ipv4.to_int b.src);
  Alcotest.(check int) (name ^ ": dst") (Flowgen.Ipv4.to_int a.dst)
    (Flowgen.Ipv4.to_int b.dst);
  Alcotest.(check int) (name ^ ": src_port") a.src_port b.src_port;
  Alcotest.(check int) (name ^ ": dst_port") a.dst_port b.dst_port;
  Alcotest.(check int) (name ^ ": proto") a.proto b.proto;
  Alcotest.(check (float 0.)) (name ^ ": bytes") a.bytes b.bytes;
  Alcotest.(check (float 0.)) (name ^ ": packets") a.packets b.packets;
  Alcotest.(check int) (name ^ ": first_s") a.first_s b.first_s;
  Alcotest.(check int) (name ^ ": last_s") a.last_s b.last_s;
  Alcotest.(check int) (name ^ ": router") a.router b.router

let check_stream name originals wire =
  let decoded, c = Wire.decode_string wire in
  Alcotest.(check int)
    (name ^ ": count")
    (List.length originals) (List.length decoded);
  List.iteri
    (fun i (a, b) ->
      check_record (Printf.sprintf "%s[%d]" name i) (Wire.normalize a) b)
    (List.combine originals decoded);
  Alcotest.(check int) (name ^ ": no gaps") 0 c.Wire.c_seq_gaps;
  Alcotest.(check int) (name ^ ": no malformed") 0 c.Wire.c_malformed;
  c

let test_v5_roundtrip () =
  (* Fractional counters round to the wire integers; everything else is
     carried exactly. *)
  let originals =
    [
      rec_ ~src:0x0A000001 ~dst:0xC0A80102 ~bytes:1500.6 ~packets:2.4
        ~first_s:0 ~last_s:3600 ();
      rec_ ~router:3 ~src_port:443 ~proto:17 ~src:7 ~dst:9 ~bytes:64.
        ~packets:1. ~first_s:7200 ~last_s:7201 ();
      rec_ ~router:3 ~src:8 ~dst:10 ~bytes:0. ~packets:0. ~first_s:7200
        ~last_s:7200 ();
    ]
  in
  let wire = String.concat "" (Wire.encode originals) in
  let c = check_stream "v5" originals wire in
  (* Router 0's record and router 3's run: two packets. *)
  Alcotest.(check int) "packets" 2 c.Wire.c_packets;
  Alcotest.(check int) "records" 3 c.Wire.c_records

let test_ipfix_roundtrip () =
  (* Counters past 32 bits and router ids past 255 both force IPFIX;
     the 64-bit fields carry them exactly. *)
  let originals =
    [
      rec_ ~src:1 ~dst:2 ~bytes:6.0e9 ~packets:5.0e6 ~first_s:100
        ~last_s:4_300_000 ();
      rec_ ~router:1000 ~src:3 ~dst:4 ~bytes:512. ~packets:1. ~first_s:5
        ~last_s:6 ();
    ]
  in
  let wire = String.concat "" (Wire.encode originals) in
  ignore (check_stream "ipfix" originals wire)

let test_mixed_stream_order () =
  (* v5 and IPFIX packets interleave in one stream; decode preserves
     record order across format boundaries. *)
  let big i = 5.0e9 +. float_of_int i and small i = 100. +. float_of_int i in
  let originals =
    List.init 10 (fun i ->
        rec_ ~src:(i + 1) ~dst:(i + 100)
          ~bytes:(if i mod 2 = 0 then big i else small i)
          ~first_s:(i * 10)
          ~last_s:((i * 10) + 5)
          ())
  in
  let packets = Wire.encode originals in
  (* Strict alternation: every record flips format, so each gets its
     own packet. *)
  Alcotest.(check int) "one packet per flip" 10 (List.length packets);
  ignore (check_stream "mixed" originals (String.concat "" packets))

let test_sequence_gap_accounting () =
  let r t = rec_ ~src:1 ~dst:2 ~bytes:10. ~first_s:t ~last_s:(t + 1) () in
  (* v5 sequence counts flows: a jump of 5 flows on one exporter. *)
  let wire =
    Wire.encode_v5 ~router:0 ~seq:0 [ r 0; r 1 ]
    ^ Wire.encode_v5 ~router:0 ~seq:7 [ r 2 ]
  in
  let _, c = Wire.decode_string wire in
  Alcotest.(check int) "flow gap" 5 c.Wire.c_seq_gaps;
  (* Exporters are independent: router 1 starting at an arbitrary seq
     is not a gap, and neither is the v5/IPFIX family split on the
     same router id. *)
  let wire =
    Wire.encode_v5 ~router:0 ~seq:0 [ r 0 ]
    ^ Wire.encode_v5 ~router:1 ~seq:900 [ r 1 ]
    ^ Wire.encode_ipfix ~router:0 ~seq:77 [ r 2 ]
    ^ Wire.encode_v5 ~router:0 ~seq:1 [ r 3 ]
    ^ Wire.encode_ipfix ~router:0 ~seq:78 [ r 4 ]
  in
  let recs, c = Wire.decode_string wire in
  Alcotest.(check int) "no cross-exporter gaps" 0 c.Wire.c_seq_gaps;
  Alcotest.(check int) "all decoded" 5 (List.length recs);
  (* Reordered (seq going backwards) is not a gap either — only
     forward jumps count missing data. *)
  let wire =
    Wire.encode_v5 ~router:0 ~seq:5 [ r 0 ] ^ Wire.encode_v5 ~router:0 ~seq:2 [ r 1 ]
  in
  let _, c = Wire.decode_string wire in
  Alcotest.(check int) "no negative gaps" 0 c.Wire.c_seq_gaps

let test_truncated_tail () =
  let r t = rec_ ~src:1 ~dst:2 ~bytes:10. ~first_s:t ~last_s:(t + 1) () in
  let good = Wire.encode_v5 ~router:0 ~seq:0 [ r 0; r 1 ] in
  let next = Wire.encode_v5 ~router:0 ~seq:2 [ r 2 ] in
  (* Cut the second packet mid-record: the first decodes, the stump is
     one malformed frame, and nothing raises. *)
  let wire = good ^ String.sub next 0 (String.length next - 7) in
  let recs, c = Wire.decode_string wire in
  Alcotest.(check int) "whole packet decoded" 2 (List.length recs);
  Alcotest.(check int) "stump counted" 1 c.Wire.c_malformed;
  (* Cut inside the header too. *)
  let wire = good ^ String.sub next 0 5 in
  let _, c = Wire.decode_string wire in
  Alcotest.(check int) "short header counted" 1 c.Wire.c_malformed

let test_garbage_never_raises () =
  (* Deterministic pseudo-random byte strings, raw and appended to a
     valid packet: decode must terminate with counters, never raise. *)
  let lcg = ref 12345 in
  let next_byte () =
    lcg := ((!lcg * 1103515245) + 12_345) land 0x3FFF_FFFF;
    Char.chr (!lcg land 0xFF)
  in
  let garbage n = String.init n (fun _ -> next_byte ()) in
  let r = rec_ ~src:1 ~dst:2 ~bytes:10. ~first_s:0 ~last_s:1 () in
  let good = Wire.encode_v5 ~router:0 ~seq:0 [ r ] in
  List.iter
    (fun n ->
      let g = garbage n in
      (* Raw garbage: must terminate (never raise). *)
      ignore (Wire.decode_string g);
      let recs, c = Wire.decode_string (good ^ g) in
      Alcotest.(check bool)
        (Printf.sprintf "good record survives %d-byte tail" n)
        true
        (List.length recs >= 1 && c.Wire.c_records >= 1))
    [ 0; 1; 2; 3; 16; 24; 47; 48; 100; 1000 ]

let test_record_sanity_skipped () =
  (* A record whose Last precedes First is dropped and counted, the
     rest of the packet survives. Patch the wire bytes directly. *)
  let r t = rec_ ~src:1 ~dst:2 ~bytes:10. ~first_s:t ~last_s:(t + 1) () in
  let wire = Bytes.of_string (Wire.encode_v5 ~router:0 ~seq:0 [ r 10; r 20 ]) in
  (* Record 0's Last (header 24 + record offset 28): set to 4ms, i.e.
     before its First of 10_000 ms. *)
  Bytes.set_int32_be wire (24 + 28) 4l;
  let recs, c = Wire.decode_string (Bytes.to_string wire) in
  Alcotest.(check int) "bad record dropped" 1 (List.length recs);
  Alcotest.(check int) "counted malformed" 1 c.Wire.c_malformed;
  Alcotest.(check int) "survivor intact" 20 (List.hd recs).first_s

let test_boot_epoch_reconstruction () =
  (* A v5 exporter with a nonzero boot epoch: First/Last are uptime-
     relative and must be rebased through unix_secs - sys_uptime. Start
     from the encoder's pinned packet and move the clock by hand. *)
  let r = rec_ ~src:1 ~dst:2 ~bytes:10. ~first_s:100 ~last_s:200 () in
  let wire = Bytes.of_string (Wire.encode_v5 ~router:0 ~seq:0 [ r ]) in
  (* Boot at 50s: unix_secs = 300, sys_uptime = 250_000 ms, and the
     record stamps become uptime-relative (first 50_000, last 150_000). *)
  Bytes.set_int32_be wire 4 250_000l;
  Bytes.set_int32_be wire 8 300l;
  Bytes.set_int32_be wire 12 0l;
  Bytes.set_int32_be wire (24 + 24) 50_000l;
  Bytes.set_int32_be wire (24 + 28) 150_000l;
  let recs, c = Wire.decode_string (Bytes.to_string wire) in
  Alcotest.(check int) "clean" 0 c.Wire.c_malformed;
  let d = List.hd recs in
  Alcotest.(check int) "first rebased" 100 d.first_s;
  Alcotest.(check int) "last rebased" 200 d.last_s

let test_ipfix_foreign_sets () =
  (* Template/options sets (unknown ids) are skipped; a data set after
     them still decodes; a data set with a broken stride is counted
     malformed without killing the message. *)
  let r = rec_ ~src:1 ~dst:2 ~bytes:10. ~first_s:0 ~last_s:1 () in
  let data = Wire.encode_ipfix ~router:0 ~seq:0 [ r ] in
  (* Splice a foreign set (id 2, 8 bytes) between header and data set:
     rebuild the message with an adjusted length. *)
  let data_set = String.sub data 16 (String.length data - 16) in
  let total = 16 + 8 + String.length data_set in
  let b = Bytes.make total '\000' in
  Bytes.blit_string data 0 b 0 16;
  Bytes.set_uint16_be b 2 total;
  Bytes.set_uint16_be b 16 2 (* template set id *);
  Bytes.set_uint16_be b 18 8;
  Bytes.blit_string data_set 0 b 24 (String.length data_set);
  let recs, c = Wire.decode_string (Bytes.to_string b) in
  Alcotest.(check int) "data set survives foreign set" 1 (List.length recs);
  Alcotest.(check int) "clean" 0 c.Wire.c_malformed;
  (* Now corrupt the data set's length to a non-multiple stride. *)
  let bad = Bytes.of_string data in
  Bytes.set_uint16_be bad 2 (String.length data - 1);
  Bytes.set_uint16_be bad 18 (4 + 48 - 1);
  let recs, c =
    Wire.decode_string (Bytes.sub_string bad 0 (String.length data - 1))
  in
  Alcotest.(check int) "stride mismatch drops set" 0 (List.length recs);
  Alcotest.(check bool) "stride mismatch counted" true (c.Wire.c_malformed >= 1)

let test_empty_ipfix_message () =
  (* A 16-byte header-only IPFIX message is valid framing: no records,
     no malformed count, and the stream continues past it. *)
  let r = rec_ ~src:1 ~dst:2 ~bytes:10. ~first_s:0 ~last_s:1 () in
  let empty = Bytes.make 16 '\000' in
  Bytes.set_uint16_be empty 0 10;
  Bytes.set_uint16_be empty 2 16;
  let wire = Bytes.to_string empty ^ Wire.encode_v5 ~router:0 ~seq:0 [ r ] in
  let recs, c = Wire.decode_string wire in
  Alcotest.(check int) "record after empty message" 1 (List.length recs);
  Alcotest.(check int) "clean" 0 c.Wire.c_malformed;
  Alcotest.(check int) "both frames counted" 2 c.Wire.c_packets

let test_channel_reader () =
  (* write_file + of_channel round trip — the bench and `serve --from`
     path. *)
  let originals =
    List.init 100 (fun i ->
        rec_ ~router:(i mod 3) ~src:(i + 1) ~dst:(i + 500)
          ~bytes:(float_of_int (1000 + i))
          ~first_s:i ~last_s:(i + 2) ())
  in
  let path = Filename.temp_file "wire_test" ".nf" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Wire.write_file path originals;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let reader = Wire.of_channel ic in
          let decoded = Wire.read_all reader in
          Alcotest.(check int) "all back" 100 (List.length decoded);
          List.iteri
            (fun i (a, b) ->
              check_record (Printf.sprintf "file[%d]" i) (Wire.normalize a) b)
            (List.combine originals decoded);
          Alcotest.(check int) "no gaps" 0 (Wire.seq_gaps reader);
          Alcotest.(check int) "no malformed" 0 (Wire.malformed reader);
          Alcotest.(check int) "records counted" 100 (Wire.records reader)))

let test_encode_rejects_uncodable () =
  let r = rec_ ~src:1 ~dst:2 ~bytes:10. ~first_s:(-5) ~last_s:1 () in
  Alcotest.check_raises "negative time" (Invalid_argument "")
    (fun () ->
      try ignore (Wire.encode [ r ]) with Invalid_argument _ ->
        raise (Invalid_argument ""));
  let r = rec_ ~router:70_000 ~src:1 ~dst:2 ~bytes:10. ~first_s:0 ~last_s:1 () in
  Alcotest.check_raises "router too wide" (Invalid_argument "")
    (fun () ->
      try ignore (Wire.encode [ r ]) with Invalid_argument _ ->
        raise (Invalid_argument ""))

let suite =
  [
    Alcotest.test_case "v5 round trip" `Quick test_v5_roundtrip;
    Alcotest.test_case "ipfix round trip" `Quick test_ipfix_roundtrip;
    Alcotest.test_case "mixed stream order" `Quick test_mixed_stream_order;
    Alcotest.test_case "sequence gap accounting" `Quick test_sequence_gap_accounting;
    Alcotest.test_case "truncated tail" `Quick test_truncated_tail;
    Alcotest.test_case "garbage never raises" `Quick test_garbage_never_raises;
    Alcotest.test_case "record sanity skipped" `Quick test_record_sanity_skipped;
    Alcotest.test_case "boot epoch reconstruction" `Quick test_boot_epoch_reconstruction;
    Alcotest.test_case "ipfix foreign sets" `Quick test_ipfix_foreign_sets;
    Alcotest.test_case "empty ipfix message" `Quick test_empty_ipfix_message;
    Alcotest.test_case "channel reader" `Quick test_channel_reader;
    Alcotest.test_case "encode rejects uncodable" `Quick test_encode_rejects_uncodable;
  ]
