(* The execution engine: domain pool determinism, keyed artifact cache
   (memory + disk tiers, schema stamps), and failure containment. *)

open Tiered

(* (a) A representative experiment grid must produce identical reports
   serial (jobs=1) and parallel (jobs=4) — same ids, same tables, same
   rendered bytes. table1 exercises the workload cache from several
   domains at once; fig8 exercises the market cache. *)
let test_parallel_serial_identical () =
  let grid =
    List.map Experiment.find [ "table1"; "fig1"; "fig3"; "fig4"; "fig5"; "fig8" ]
  in
  let serial = Runner.run_experiments ~jobs:1 grid in
  let parallel = Runner.run_experiments ~jobs:4 grid in
  Alcotest.(check (list string))
    "ids in submission order"
    (List.map (fun (r : Runner.result) -> r.Runner.id) serial)
    (List.map (fun (r : Runner.result) -> r.Runner.id) parallel);
  List.iter2
    (fun (a : Runner.result) (b : Runner.result) ->
      if a.Runner.tables <> b.Runner.tables then
        Alcotest.failf "experiment %s: parallel tables diverge" a.Runner.id)
    serial parallel;
  Alcotest.(check string)
    "byte-identical rendering" (Runner.render serial) (Runner.render parallel)

(* Plain pool mapping: ordering and the serial fallback. *)
let test_pool_map_order () =
  let input = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 1) input in
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int))
        "parallel order" expected
        (Engine.Pool.map pool (fun i -> (i * i) + 1) input));
  Engine.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (array int))
        "serial fallback" expected
        (Engine.Pool.map pool (fun i -> (i * i) + 1) input))

(* (b) The in-memory tier returns the physically same artifact until an
   explicit invalidate forces a recomputation. *)
let test_cache_physical_equality () =
  let cache = Engine.Cache.create ~name:"test-mem" () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    Array.init 4 float_of_int
  in
  let key = ("eu_isp", 1.1, 20.) in
  let first = Engine.Cache.find_or_add cache ~key compute in
  let second = Engine.Cache.find_or_add cache ~key compute in
  Alcotest.(check bool) "physically equal" true (first == second);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "one hit" 1 (Engine.Cache.stats cache).Engine.Cache.hits;
  Engine.Cache.invalidate cache ~key;
  let third = Engine.Cache.find_or_add cache ~key compute in
  Alcotest.(check int) "recomputed after invalidate" 2 !calls;
  Alcotest.(check bool) "fresh artifact" false (third == first);
  (* A different key never aliases. *)
  let other = Engine.Cache.find_or_add cache ~key:("cdn", 1.1, 20.) compute in
  Alcotest.(check int) "distinct keys computed separately" 3 !calls;
  Alcotest.(check bool) "distinct artifact" false (other == third)

(* (c) The disk tier round-trips artifacts across cache instances and
   rejects payloads written under a stale schema version. *)
let test_cache_disk_tier () =
  let dir =
    let f = Filename.temp_file "engine-cache" "" in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f
  in
  Engine.Cache.enable_disk ~dir ();
  Fun.protect ~finally:Engine.Cache.disable_disk @@ fun () ->
  let calls = ref 0 in
  let compute () =
    incr calls;
    [ ("fit", 42.5); ("gamma", 0.25) ]
  in
  let key = ("market", "internet2", 0.2) in
  let c1 = Engine.Cache.create ~name:"test-disk" ~schema:"v1" () in
  let v1 = Engine.Cache.find_or_add c1 ~key compute in
  Alcotest.(check int) "computed and written" 1 !calls;
  (* A fresh cache (cold memory tier, same schema) loads from disk. *)
  let c2 = Engine.Cache.create ~name:"test-disk" ~schema:"v1" () in
  let v2 = Engine.Cache.find_or_add c2 ~key compute in
  Alcotest.(check int) "disk hit, no recomputation" 1 !calls;
  Alcotest.(check bool) "round-trips structurally" true (v1 = v2);
  Alcotest.(check int)
    "counted as disk hit" 1 (Engine.Cache.stats c2).Engine.Cache.disk_hits;
  (* A bumped schema must reject the stale payload and recompute. *)
  let c3 = Engine.Cache.create ~name:"test-disk" ~schema:"v2" () in
  let _ = Engine.Cache.find_or_add c3 ~key compute in
  Alcotest.(check int) "stale schema rejected" 2 !calls;
  Alcotest.(check int)
    "stale read is a miss" 1 (Engine.Cache.stats c3).Engine.Cache.misses

let temp_cache_dir () =
  let f = Filename.temp_file "engine-cache" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

(* Byte count of the payload files actually on disk — an independent
   check of the engine's own accounting. *)
let scan_payload_bytes dir =
  Array.fold_left
    (fun acc name ->
      if Filename.check_suffix name ".bin" then
        acc + (Unix.stat (Filename.concat dir name)).Unix.st_size
      else acc)
    0 (Sys.readdir dir)

(* (e) A bounded disk tier never holds more than max_bytes of payload,
   whatever the (randomized) insert sizes; evicted artifacts recompute
   instead of erroring. *)
let test_cache_eviction_respects_budget () =
  let dir = temp_cache_dir () in
  let max_bytes = 4096 in
  Engine.Cache.enable_disk ~max_bytes ~dir ();
  Fun.protect ~finally:Engine.Cache.disable_disk @@ fun () ->
  let cache = Engine.Cache.create ~name:"test-evict" ~schema:"v1" () in
  let rng = Random.State.make [| 0xEC41C7 |] in
  let computes = ref 0 in
  let first_n = ref 0 in
  (* 40 artifacts of randomized size (several times the budget in
     total). After every single write the invariant must hold. *)
  for i = 0 to 39 do
    let n = 64 + Random.State.int rng 1024 in
    if i = 0 then first_n := n;
    let (_ : string) =
      Engine.Cache.find_or_add cache ~key:("blob", i, n) (fun () ->
          incr computes;
          String.make n (Char.chr (65 + (i mod 26))))
    in
    let on_disk = scan_payload_bytes dir in
    if on_disk > max_bytes then
      Alcotest.failf "after insert %d: %d payload bytes on disk > budget %d" i
        on_disk max_bytes;
    let accounted = Engine.Cache.disk_usage_bytes () in
    Alcotest.(check int)
      (Printf.sprintf "accounting matches scan after insert %d" i)
      on_disk accounted
  done;
  (match Engine.Cache.disk_stats () with
  | None -> Alcotest.fail "disk tier enabled but disk_stats is None"
  | Some s ->
      Alcotest.(check (option int)) "budget reported" (Some max_bytes)
        s.Engine.Cache.max_bytes;
      Alcotest.(check bool) "bytes within budget" true
        (s.Engine.Cache.bytes <= max_bytes);
      Alcotest.(check bool)
        (Printf.sprintf "evictions happened (%d)" s.Engine.Cache.evictions)
        true
        (s.Engine.Cache.evictions > 0));
  (* The first key was long evicted from disk; with a cold memory tier
     the lookup recomputes rather than raising. *)
  let cold = Engine.Cache.create ~name:"test-evict" ~schema:"v1" () in
  let before = !computes in
  let (_ : string) =
    Engine.Cache.find_or_add cold ~key:("blob", 0, !first_n) (fun () ->
        incr computes;
        "recomputed")
  in
  Alcotest.(check int) "evicted key recomputes cleanly" (before + 1) !computes

(* (f) A truncated/corrupt on-disk payload is a miss, never an error:
   the artifact recomputes and the bad payload is overwritten. *)
let test_cache_truncated_payload_is_miss () =
  let dir = temp_cache_dir () in
  Engine.Cache.enable_disk ~dir ();
  Fun.protect ~finally:Engine.Cache.disable_disk @@ fun () ->
  let calls = ref 0 in
  let compute () =
    incr calls;
    [ 1.5; 2.5; 3.5 ]
  in
  let key = ("corrupt", 7) in
  let c1 = Engine.Cache.create ~name:"test-corrupt" ~schema:"v1" () in
  let _ = Engine.Cache.find_or_add c1 ~key compute in
  Alcotest.(check int) "written once" 1 !calls;
  (* Truncate every payload in place (header survives partially; the
     unmarshal must fail gracefully). *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".bin" then begin
        let path = Filename.concat dir name in
        let size = (Unix.stat path).Unix.st_size in
        Unix.truncate path (max 1 (size / 2))
      end)
    (Sys.readdir dir);
  let c2 = Engine.Cache.create ~name:"test-corrupt" ~schema:"v1" () in
  let v = Engine.Cache.find_or_add c2 ~key compute in
  Alcotest.(check int) "truncated payload recomputed" 2 !calls;
  Alcotest.(check (list (float 1e-9))) "value intact" [ 1.5; 2.5; 3.5 ] v;
  Alcotest.(check int)
    "truncated read is a miss, not an error" 1
    (Engine.Cache.stats c2).Engine.Cache.misses;
  (* Zero-byte payloads (crash during write) behave the same. *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".bin" then
        Unix.truncate (Filename.concat dir name) 0)
    (Sys.readdir dir);
  let c3 = Engine.Cache.create ~name:"test-corrupt" ~schema:"v1" () in
  let _ = Engine.Cache.find_or_add c3 ~key compute in
  Alcotest.(check int) "zero-byte payload recomputed" 3 !calls

(* (g) A synthetic experiment of 100 micro-cells merges identically
   through the Runner at jobs=1/2/8, and matches both direct paths. *)
let test_runner_micro_cells () =
  let n = 100 in
  let row i = [ Printf.sprintf "cell%02d" i; string_of_int ((i * 37) mod 101) ] in
  let micro : Experiment.t =
    {
      Experiment.id = "micro100";
      description = "synthetic 100-cell grid";
      run =
        (fun () ->
          [
            Report.make ~title:"micro" ~header:[ "cell"; "value" ]
              (List.init n row);
          ]);
      cells =
        (fun () ->
          List.init n (fun i ->
              {
                Experiment.label = Printf.sprintf "c%d" i;
                compute = (fun () -> Experiment.Rows [ row i ]);
              }));
      assemble =
        (fun outputs ->
          let rows =
            List.concat_map
              (function
                | Experiment.Rows rows -> rows
                | Experiment.Tables _ -> Alcotest.fail "unexpected Tables")
              outputs
          in
          [ Report.make ~title:"micro" ~header:[ "cell"; "value" ] rows ]);
    }
  in
  Alcotest.(check bool)
    "decomposed serial path = direct path" true
    (Experiment.run_cells micro = micro.Experiment.run ());
  let render jobs = Runner.render (Runner.run_experiments ~jobs [ micro ]) in
  let r1 = render 1 in
  Alcotest.(check string) "jobs=2 merges identically" r1 (render 2);
  Alcotest.(check string) "jobs=8 merges identically" r1 (render 8)

(* (d) A raising task is reported (deterministically: lowest failing
   index) without deadlocking the queue; the pool stays usable. *)
let test_pool_survives_exception () =
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Engine.Pool.map pool
           (fun i -> if i mod 5 = 3 then failwith "boom" else i)
           (Array.init 16 (fun i -> i))
       with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Engine.Pool.Task_failed { index; exn; _ } ->
          Alcotest.(check int) "lowest failing index" 3 index;
          Alcotest.(check string) "original exception" "boom"
            (match exn with Failure m -> m | _ -> Printexc.to_string exn));
      (* The queue drained; the same pool still schedules new work. *)
      let again =
        Engine.Pool.map pool (fun i -> i + 1) (Array.init 8 (fun i -> i))
      in
      Alcotest.(check (array int))
        "pool alive after failure"
        (Array.init 8 (fun i -> i + 1))
        again)

let suite =
  [
    Alcotest.test_case "parallel = serial on an experiment grid" `Slow
      test_parallel_serial_identical;
    Alcotest.test_case "pool map preserves order" `Quick test_pool_map_order;
    Alcotest.test_case "cache memory tier: physical equality + invalidate"
      `Quick test_cache_physical_equality;
    Alcotest.test_case "cache disk tier: round-trip + schema stamp" `Quick
      test_cache_disk_tier;
    Alcotest.test_case "cache disk tier: eviction respects max_bytes" `Quick
      test_cache_eviction_respects_budget;
    Alcotest.test_case "cache disk tier: truncated payload is a miss" `Quick
      test_cache_truncated_payload_is_miss;
    Alcotest.test_case "runner: 100 micro-cells merge identically" `Quick
      test_runner_micro_cells;
    Alcotest.test_case "pool survives raising tasks" `Quick
      test_pool_survives_exception;
  ]
