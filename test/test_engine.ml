(* The execution engine: domain pool determinism, keyed artifact cache
   (memory + disk tiers, schema stamps), and failure containment. *)

open Tiered

(* (a) A representative experiment grid must produce identical reports
   serial (jobs=1) and parallel (jobs=4) — same ids, same tables, same
   rendered bytes. table1 exercises the workload cache from several
   domains at once; fig8 exercises the market cache. *)
let test_parallel_serial_identical () =
  let grid =
    List.map Experiment.find [ "table1"; "fig1"; "fig3"; "fig4"; "fig5"; "fig8" ]
  in
  let serial = Runner.run_experiments ~jobs:1 grid in
  let parallel = Runner.run_experiments ~jobs:4 grid in
  Alcotest.(check (list string))
    "ids in submission order"
    (List.map (fun (r : Runner.result) -> r.Runner.id) serial)
    (List.map (fun (r : Runner.result) -> r.Runner.id) parallel);
  List.iter2
    (fun (a : Runner.result) (b : Runner.result) ->
      if a.Runner.tables <> b.Runner.tables then
        Alcotest.failf "experiment %s: parallel tables diverge" a.Runner.id)
    serial parallel;
  Alcotest.(check string)
    "byte-identical rendering" (Runner.render serial) (Runner.render parallel)

(* Plain pool mapping: ordering and the serial fallback. *)
let test_pool_map_order () =
  let input = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 1) input in
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int))
        "parallel order" expected
        (Engine.Pool.map pool (fun i -> (i * i) + 1) input));
  Engine.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (array int))
        "serial fallback" expected
        (Engine.Pool.map pool (fun i -> (i * i) + 1) input))

(* (b) The in-memory tier returns the physically same artifact until an
   explicit invalidate forces a recomputation. *)
let test_cache_physical_equality () =
  let cache = Engine.Cache.create ~name:"test-mem" () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    Array.init 4 float_of_int
  in
  let key = ("eu_isp", 1.1, 20.) in
  let first = Engine.Cache.find_or_add cache ~key compute in
  let second = Engine.Cache.find_or_add cache ~key compute in
  Alcotest.(check bool) "physically equal" true (first == second);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "one hit" 1 (Engine.Cache.stats cache).Engine.Cache.hits;
  Engine.Cache.invalidate cache ~key;
  let third = Engine.Cache.find_or_add cache ~key compute in
  Alcotest.(check int) "recomputed after invalidate" 2 !calls;
  Alcotest.(check bool) "fresh artifact" false (third == first);
  (* A different key never aliases. *)
  let other = Engine.Cache.find_or_add cache ~key:("cdn", 1.1, 20.) compute in
  Alcotest.(check int) "distinct keys computed separately" 3 !calls;
  Alcotest.(check bool) "distinct artifact" false (other == third)

(* (c) The disk tier round-trips artifacts across cache instances and
   rejects payloads written under a stale schema version. *)
let test_cache_disk_tier () =
  let dir =
    let f = Filename.temp_file "engine-cache" "" in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f
  in
  Engine.Cache.enable_disk ~dir ();
  Fun.protect ~finally:Engine.Cache.disable_disk @@ fun () ->
  let calls = ref 0 in
  let compute () =
    incr calls;
    [ ("fit", 42.5); ("gamma", 0.25) ]
  in
  let key = ("market", "internet2", 0.2) in
  let c1 = Engine.Cache.create ~name:"test-disk" ~schema:"v1" () in
  let v1 = Engine.Cache.find_or_add c1 ~key compute in
  Alcotest.(check int) "computed and written" 1 !calls;
  (* A fresh cache (cold memory tier, same schema) loads from disk. *)
  let c2 = Engine.Cache.create ~name:"test-disk" ~schema:"v1" () in
  let v2 = Engine.Cache.find_or_add c2 ~key compute in
  Alcotest.(check int) "disk hit, no recomputation" 1 !calls;
  Alcotest.(check bool) "round-trips structurally" true (v1 = v2);
  Alcotest.(check int)
    "counted as disk hit" 1 (Engine.Cache.stats c2).Engine.Cache.disk_hits;
  (* A bumped schema must reject the stale payload and recompute. *)
  let c3 = Engine.Cache.create ~name:"test-disk" ~schema:"v2" () in
  let _ = Engine.Cache.find_or_add c3 ~key compute in
  Alcotest.(check int) "stale schema rejected" 2 !calls;
  Alcotest.(check int)
    "stale read is a miss" 1 (Engine.Cache.stats c3).Engine.Cache.misses

let temp_cache_dir () =
  let f = Filename.temp_file "engine-cache" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

(* Byte count of the payload files actually on disk — an independent
   check of the engine's own accounting. *)
let scan_payload_bytes dir =
  Array.fold_left
    (fun acc name ->
      if Filename.check_suffix name ".bin" then
        acc + (Unix.stat (Filename.concat dir name)).Unix.st_size
      else acc)
    0 (Sys.readdir dir)

(* (e) A bounded disk tier never holds more than max_bytes of payload,
   whatever the (randomized) insert sizes; evicted artifacts recompute
   instead of erroring. *)
let test_cache_eviction_respects_budget () =
  let dir = temp_cache_dir () in
  let max_bytes = 4096 in
  Engine.Cache.enable_disk ~max_bytes ~dir ();
  Fun.protect ~finally:Engine.Cache.disable_disk @@ fun () ->
  let cache = Engine.Cache.create ~name:"test-evict" ~schema:"v1" () in
  let rng = Random.State.make [| 0xEC41C7 |] in
  let computes = ref 0 in
  let first_n = ref 0 in
  (* 40 artifacts of randomized size (several times the budget in
     total). After every single write the invariant must hold. *)
  for i = 0 to 39 do
    let n = 64 + Random.State.int rng 1024 in
    if i = 0 then first_n := n;
    let (_ : string) =
      Engine.Cache.find_or_add cache ~key:("blob", i, n) (fun () ->
          incr computes;
          String.make n (Char.chr (65 + (i mod 26))))
    in
    let on_disk = scan_payload_bytes dir in
    if on_disk > max_bytes then
      Alcotest.failf "after insert %d: %d payload bytes on disk > budget %d" i
        on_disk max_bytes;
    let accounted = Engine.Cache.disk_usage_bytes () in
    Alcotest.(check int)
      (Printf.sprintf "accounting matches scan after insert %d" i)
      on_disk accounted
  done;
  (match Engine.Cache.disk_stats () with
  | None -> Alcotest.fail "disk tier enabled but disk_stats is None"
  | Some s ->
      Alcotest.(check (option int)) "budget reported" (Some max_bytes)
        s.Engine.Cache.max_bytes;
      Alcotest.(check bool) "bytes within budget" true
        (s.Engine.Cache.bytes <= max_bytes);
      Alcotest.(check bool)
        (Printf.sprintf "evictions happened (%d)" s.Engine.Cache.evictions)
        true
        (s.Engine.Cache.evictions > 0));
  (* The first key was long evicted from disk; with a cold memory tier
     the lookup recomputes rather than raising. *)
  let cold = Engine.Cache.create ~name:"test-evict" ~schema:"v1" () in
  let before = !computes in
  let (_ : string) =
    Engine.Cache.find_or_add cold ~key:("blob", 0, !first_n) (fun () ->
        incr computes;
        "recomputed")
  in
  Alcotest.(check int) "evicted key recomputes cleanly" (before + 1) !computes

(* (f) A truncated/corrupt on-disk payload is a miss, never an error:
   the artifact recomputes and the bad payload is overwritten. *)
let test_cache_truncated_payload_is_miss () =
  let dir = temp_cache_dir () in
  Engine.Cache.enable_disk ~dir ();
  Fun.protect ~finally:Engine.Cache.disable_disk @@ fun () ->
  let calls = ref 0 in
  let compute () =
    incr calls;
    [ 1.5; 2.5; 3.5 ]
  in
  let key = ("corrupt", 7) in
  let c1 = Engine.Cache.create ~name:"test-corrupt" ~schema:"v1" () in
  let _ = Engine.Cache.find_or_add c1 ~key compute in
  Alcotest.(check int) "written once" 1 !calls;
  (* Truncate every payload in place (header survives partially; the
     unmarshal must fail gracefully). *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".bin" then begin
        let path = Filename.concat dir name in
        let size = (Unix.stat path).Unix.st_size in
        Unix.truncate path (max 1 (size / 2))
      end)
    (Sys.readdir dir);
  let c2 = Engine.Cache.create ~name:"test-corrupt" ~schema:"v1" () in
  let v = Engine.Cache.find_or_add c2 ~key compute in
  Alcotest.(check int) "truncated payload recomputed" 2 !calls;
  Alcotest.(check (list (float 1e-9))) "value intact" [ 1.5; 2.5; 3.5 ] v;
  Alcotest.(check int)
    "truncated read is a miss, not an error" 1
    (Engine.Cache.stats c2).Engine.Cache.misses;
  (* Zero-byte payloads (crash during write) behave the same. *)
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".bin" then
        Unix.truncate (Filename.concat dir name) 0)
    (Sys.readdir dir);
  let c3 = Engine.Cache.create ~name:"test-corrupt" ~schema:"v1" () in
  let _ = Engine.Cache.find_or_add c3 ~key compute in
  Alcotest.(check int) "zero-byte payload recomputed" 3 !calls

(* (g) A synthetic experiment of 100 micro-cells merges identically
   through the Runner at jobs=1/2/8, and matches both direct paths. *)
let test_runner_micro_cells () =
  let n = 100 in
  let row i = [ Printf.sprintf "cell%02d" i; string_of_int ((i * 37) mod 101) ] in
  let micro : Experiment.t =
    {
      Experiment.id = "micro100";
      description = "synthetic 100-cell grid";
      run =
        (fun () ->
          [
            Report.make ~title:"micro" ~header:[ "cell"; "value" ]
              (List.init n row);
          ]);
      cells =
        (fun () ->
          List.init n (fun i ->
              {
                Experiment.label = Printf.sprintf "c%d" i;
                compute = (fun () -> Experiment.Rows [ row i ]);
              }));
      assemble =
        (fun outputs ->
          let rows =
            List.concat_map
              (function
                | Experiment.Rows rows -> rows
                | Experiment.Tables _ -> Alcotest.fail "unexpected Tables")
              outputs
          in
          [ Report.make ~title:"micro" ~header:[ "cell"; "value" ] rows ]);
    }
  in
  Alcotest.(check bool)
    "decomposed serial path = direct path" true
    (Experiment.run_cells micro = micro.Experiment.run ());
  let render jobs = Runner.render (Runner.run_experiments ~jobs [ micro ]) in
  let r1 = render 1 in
  Alcotest.(check string) "jobs=2 merges identically" r1 (render 2);
  Alcotest.(check string) "jobs=8 merges identically" r1 (render 8)

(* (d) A raising task is reported (deterministically: lowest failing
   index) without deadlocking the queue; the pool stays usable. *)
let test_pool_survives_exception () =
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Engine.Pool.map pool
           (fun i -> if i mod 5 = 3 then failwith "boom" else i)
           (Array.init 16 (fun i -> i))
       with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Engine.Pool.Task_failed { index; exn; backtrace } ->
          Alcotest.(check int) "lowest failing index" 3 index;
          Alcotest.(check string) "original exception" "boom"
            (match exn with Failure m -> m | _ -> Printexc.to_string exn);
          (* Worker domains enable backtrace recording (per-domain
             state, off by default in fresh domains): a failure report
             without a backtrace is a debugging dead end. *)
          Alcotest.(check bool) "non-empty backtrace" true
            (String.length (String.trim backtrace) > 0));
      (* The queue drained; the same pool still schedules new work. *)
      let again =
        Engine.Pool.map pool (fun i -> i + 1) (Array.init 8 (fun i -> i))
      in
      Alcotest.(check (array int))
        "pool alive after failure"
        (Array.init 8 (fun i -> i + 1))
        again)

(* (h) Eviction accounting: a payload that cannot be removed must not
   count as freed bytes, or the tier is left over budget whenever an
   eviction loses a race (or hits a permission error). Simulated via
   the Private remove hook — filesystem permissions are useless for
   this when tests run as root. *)
let test_eviction_skips_unremovable () =
  let dir = temp_cache_dir () in
  (* Calibrate the payload file size with an unbounded tier first. *)
  Engine.Cache.enable_disk ~dir ();
  let finally () =
    Engine.Cache.Private.set_remove_hook None;
    Engine.Cache.disable_disk ()
  in
  Fun.protect ~finally @@ fun () ->
  let cache = Engine.Cache.create ~name:"test-unremovable" ~schema:"v1" () in
  let payload i = String.make 512 (Char.chr (65 + i)) in
  let add i =
    ignore (Engine.Cache.find_or_add cache ~key:("pin", i) (fun () -> payload i))
  in
  add 0;
  let s = scan_payload_bytes dir in
  Alcotest.(check bool) "payload written" true (s > 0);
  (* Re-enable with a 2-payload budget; make payload 0 unremovable.
     Objects are content-addressed, so the pinned file is named by the
     digest of payload 0's bytes, not by its key. *)
  Engine.Cache.enable_disk ~max_bytes:(2 * s) ~dir ();
  let pinned = Engine.Cache.Private.payload_digest cache (payload 0) in
  Engine.Cache.Private.set_remove_hook
    (Some
       (fun path ->
         if Filename.basename path = Engine.Cas.object_name pinned then
           raise (Sys_error (path ^ ": simulated unremovable payload"))
         else Sys.remove path));
  for i = 1 to 3 do
    add i;
    let on_disk = scan_payload_bytes dir in
    (* The buggy accounting subtracted the pinned payload's size
       despite the failed removal and stopped evicting early, leaving
       3 payloads (> budget) on disk after insert 2. *)
    if on_disk > 2 * s then
      Alcotest.failf
        "after insert %d: %d payload bytes on disk > budget %d (failed \
         removal was counted as freed)"
        i on_disk (2 * s)
  done;
  (* The unremovable payload itself was skipped, never deleted: it
     still disk-hits from a cold memory tier. *)
  let cold = Engine.Cache.create ~name:"test-unremovable" ~schema:"v1" () in
  let v = Engine.Cache.find_or_add cold ~key:("pin", 0) (fun () -> "MISS") in
  Alcotest.(check string) "pinned payload survived" (payload 0) v;
  (match Engine.Cache.disk_stats () with
  | None -> Alcotest.fail "disk tier enabled but disk_stats is None"
  | Some st ->
      Alcotest.(check bool)
        (Printf.sprintf "only real removals counted (%d)"
           st.Engine.Cache.evictions)
        true
        (st.Engine.Cache.evictions >= 1))

(* (i) LRU recency: a disk hit must protect a payload from eviction
   even when it lands in the same second as every write. The old
   mtime-based stamp (whole seconds under OCaml's Unix.stat) could not
   see the hit, and the name tie-break then deterministically evicted
   the hot payload. Keys are ordered so the hot payload sorts first by
   file name — the exact case the mtime scheme got wrong. *)
let test_lru_same_second_hit_survives () =
  let dir = temp_cache_dir () in
  Engine.Cache.enable_disk ~dir ();
  Fun.protect ~finally:Engine.Cache.disable_disk @@ fun () ->
  (* Pick the key whose digest (hence payload file name) is smaller as
     the hot one: under a same-second mtime tie the old scheme evicted
     the lexicographically first file, i.e. precisely this payload. *)
  let k0 = ("lru", 0) and k1 = ("lru", 1) in
  let hot, cold_key =
    if String.compare (Engine.Cache.key_digest k0) (Engine.Cache.key_digest k1) < 0
    then (k0, k1)
    else (k1, k0)
  in
  let computes = ref 0 in
  let value tag = tag ^ String.make 256 'x' in
  let add cache key tag =
    Engine.Cache.find_or_add cache ~key (fun () ->
        incr computes;
        value tag)
  in
  let c1 = Engine.Cache.create ~name:"test-lru" ~schema:"v1" () in
  ignore (add c1 hot "hot");
  let s = scan_payload_bytes dir in
  ignore (add c1 cold_key "cold");
  Alcotest.(check int) "both computed" 2 !computes;
  (* Disk-hit the hot payload through a fresh cache (cold memory
     tier) — this refreshes its recency stamp, same second or not. *)
  let c2 = Engine.Cache.create ~name:"test-lru" ~schema:"v1" () in
  Alcotest.(check string) "hot disk hit" (value "hot") (add c2 hot "hot");
  Alcotest.(check int) "hit did not recompute" 2 !computes;
  (* Now bound the tier at two payloads and write a third: the
     least-recently-used payload is the un-hit one, not the hot one. *)
  Engine.Cache.enable_disk ~max_bytes:(2 * s) ~dir ();
  ignore (add c2 ("lru", 2) "new");
  Alcotest.(check int) "third computed" 3 !computes;
  let c3 = Engine.Cache.create ~name:"test-lru" ~schema:"v1" () in
  Alcotest.(check string)
    "hot payload survived the eviction" (value "hot") (add c3 hot "hot");
  Alcotest.(check int) "hot still served from disk" 3 !computes;
  let c4 = Engine.Cache.create ~name:"test-lru" ~schema:"v1" () in
  ignore (add c4 cold_key "cold");
  Alcotest.(check int) "un-hit payload was the one evicted" 4 !computes

(* (j) The serial fast path of a multi-worker pool books its time to a
   distinct caller slot: tiny maps must not skew worker slot 0 (and
   with it the max/mean load-balance statistic). *)
let test_caller_slot_not_worker_zero () =
  let spin_ms x =
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < 0.01 do
      ()
    done;
    x
  in
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      (* A 1-task map takes the serial fast path on the caller. *)
      ignore (Engine.Pool.map pool spin_ms [| 1 |]);
      let busy = Engine.Pool.busy_times pool in
      Alcotest.(check int) "one slot per worker" 4 (Array.length busy);
      Array.iteri
        (fun i b ->
          if b > 0. then
            Alcotest.failf
              "worker slot %d booked %.6fs for a serial fast-path map" i b)
        busy);
  (* A pool without workers reports the single caller slot instead. *)
  Engine.Pool.with_pool ~jobs:1 (fun pool ->
      ignore (Engine.Pool.map pool spin_ms [| 1 |]);
      let busy = Engine.Pool.busy_times pool in
      Alcotest.(check int) "single caller slot" 1 (Array.length busy);
      Alcotest.(check bool) "caller time booked" true (busy.(0) > 0.))

(* --- subprocess backend ---------------------------------------------------- *)

(* The procs tests require the backend to actually come up (this test
   binary re-invokes itself with --engine-worker; Test_main calls
   Proc.maybe_run_worker first). A degraded pool would make the
   self-kill tasks below kill the test process, so assert loudly. *)
let require_procs pool =
  if Engine.Pool.backend pool <> Engine.Pool.Procs then
    Alcotest.fail
      "subprocess backend unavailable (spawn failed); cannot run this test"

(* (k) Byte-identity across substrates: the same grid rendered through
   worker subprocesses equals the serial rendering exactly. *)
let test_proc_backend_identical () =
  let grid = List.map Experiment.find [ "table1"; "fig8" ] in
  let serial = Runner.render (Runner.run_experiments ~jobs:1 grid) in
  let procs =
    Runner.render
      (Runner.run_experiments ~backend:Engine.Pool.Procs ~jobs:2 grid)
  in
  Alcotest.(check string) "procs rendering byte-identical" serial procs

(* (l) Fault injection: SIGKILL a worker mid-map. The in-flight task
   must be retried on a surviving/replacement worker, the results must
   be byte-identical to an undisturbed run, and the pool must report
   the restart. *)
let test_proc_worker_kill_recovers () =
  Engine.Pool.with_pool ~backend:Engine.Pool.Procs ~jobs:2 ~retries:2
    (fun pool ->
      require_procs pool;
      let sentinel = Filename.temp_file "engine-kill" ".sentinel" in
      Sys.remove sentinel;
      Fun.protect ~finally:(fun () ->
          try Sys.remove sentinel with Sys_error _ -> ())
      @@ fun () ->
      let f i =
        if i = 3 && not (Sys.file_exists sentinel) then begin
          (* First attempt only: leave a marker, then die like a
             segfault would — no cleanup, no exit handlers. *)
          let oc = open_out sentinel in
          close_out oc;
          Unix.kill (Unix.getpid ()) Sys.sigkill
        end;
        i * 2
      in
      let out = Engine.Pool.map pool f (Array.init 8 (fun i -> i)) in
      Alcotest.(check (array int))
        "results identical despite the crash"
        (Array.init 8 (fun i -> i * 2))
        out;
      Alcotest.(check bool)
        (Printf.sprintf "restart recorded (%d)" (Engine.Pool.restarts pool))
        true
        (Engine.Pool.restarts pool >= 1);
      (* The pool keeps working after recovery. *)
      let again = Engine.Pool.map pool (fun i -> i + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool alive after crash" [| 2; 3; 4 |] again)

(* (m) Retry exhaustion: a task that kills its worker on every attempt
   fails deterministically with Worker_lost after retries are spent —
   it must not hang the map or poison the other tasks. *)
let test_proc_retry_exhaustion () =
  Engine.Pool.with_pool ~backend:Engine.Pool.Procs ~jobs:2 ~retries:1
    (fun pool ->
      require_procs pool;
      let f i =
        if i = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
        i + 10
      in
      match Engine.Pool.map pool f [| 0; 1; 2; 3 |] with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Engine.Pool.Task_failed { index; exn; _ } -> (
          Alcotest.(check int) "deterministic failing index" 1 index;
          match exn with
          | Engine.Proc.Worker_lost { attempts; _ } ->
              Alcotest.(check int) "retries=1 means two attempts" 2 attempts
          | other ->
              Alcotest.failf "expected Worker_lost, got %s"
                (Printexc.to_string other)))

(* (n) A task exception inside a worker is a failure report, not a
   crash: no retry, surfaced as Remote_failure with the printed
   exception. *)
let test_proc_remote_failure () =
  Engine.Pool.with_pool ~backend:Engine.Pool.Procs ~jobs:2 ~retries:2
    (fun pool ->
      require_procs pool;
      match
        Engine.Pool.map pool
          (fun i -> if i = 2 then failwith "remote boom" else i)
          [| 0; 1; 2; 3 |]
      with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Engine.Pool.Task_failed { index; exn; _ } -> (
          Alcotest.(check int) "failing index" 2 index;
          Alcotest.(check int) "a raising task is not a worker loss" 0
            (Engine.Pool.restarts pool);
          match exn with
          | Engine.Proc.Remote_failure { message } ->
              Alcotest.(check bool)
                (Printf.sprintf "printed exception carried over (%s)" message)
                true
                (String.length message > 0
                && String.equal message (Printexc.to_string (Failure "remote boom")))
          | other ->
              Alcotest.failf "expected Remote_failure, got %s"
                (Printexc.to_string other)))

(* (o) Per-task timeout: a wedged worker is killed and replaced, and
   the task retried; the map completes instead of hanging. *)
let test_proc_timeout_replaces_wedged_worker () =
  Engine.Pool.with_pool ~backend:Engine.Pool.Procs ~jobs:1 ~retries:2
    ~timeout_s:0.5 (fun pool ->
      require_procs pool;
      let sentinel = Filename.temp_file "engine-wedge" ".sentinel" in
      Sys.remove sentinel;
      Fun.protect ~finally:(fun () ->
          try Sys.remove sentinel with Sys_error _ -> ())
      @@ fun () ->
      let f i =
        if i = 0 && not (Sys.file_exists sentinel) then begin
          let oc = open_out sentinel in
          close_out oc;
          (* Wedge far beyond the timeout; only SIGKILL gets us out. *)
          Unix.sleep 30
        end;
        i + 100
      in
      let t0 = Unix.gettimeofday () in
      let out = Engine.Pool.map pool f [| 0; 1 |] in
      let wall = Unix.gettimeofday () -. t0 in
      Alcotest.(check (array int)) "wedged task retried" [| 100; 101 |] out;
      Alcotest.(check bool)
        (Printf.sprintf "timeout enforced, no 30s hang (%.2fs)" wall)
        true (wall < 10.);
      Alcotest.(check bool) "wedged worker replaced" true
        (Engine.Pool.restarts pool >= 1))

let suite =
  [
    Alcotest.test_case "parallel = serial on an experiment grid" `Slow
      test_parallel_serial_identical;
    Alcotest.test_case "pool map preserves order" `Quick test_pool_map_order;
    Alcotest.test_case "cache memory tier: physical equality + invalidate"
      `Quick test_cache_physical_equality;
    Alcotest.test_case "cache disk tier: round-trip + schema stamp" `Quick
      test_cache_disk_tier;
    Alcotest.test_case "cache disk tier: eviction respects max_bytes" `Quick
      test_cache_eviction_respects_budget;
    Alcotest.test_case "cache disk tier: truncated payload is a miss" `Quick
      test_cache_truncated_payload_is_miss;
    Alcotest.test_case "runner: 100 micro-cells merge identically" `Quick
      test_runner_micro_cells;
    Alcotest.test_case "pool survives raising tasks" `Quick
      test_pool_survives_exception;
    Alcotest.test_case "cache eviction skips unremovable payloads" `Quick
      test_eviction_skips_unremovable;
    Alcotest.test_case "cache LRU: same-second disk hit protects a payload"
      `Quick test_lru_same_second_hit_survives;
    Alcotest.test_case "pool serial fast path books a caller slot" `Quick
      test_caller_slot_not_worker_zero;
    Alcotest.test_case "procs backend renders byte-identically" `Slow
      test_proc_backend_identical;
    Alcotest.test_case "procs backend recovers from a killed worker" `Quick
      test_proc_worker_kill_recovers;
    Alcotest.test_case "procs backend exhausts retries deterministically"
      `Quick test_proc_retry_exhaustion;
    Alcotest.test_case "procs backend reports task exceptions remotely" `Quick
      test_proc_remote_failure;
    Alcotest.test_case "procs backend times out a wedged worker" `Quick
      test_proc_timeout_replaces_wedged_worker;
  ]
