(* The execution engine: domain pool determinism, keyed artifact cache
   (memory + disk tiers, schema stamps), and failure containment. *)

open Tiered

(* (a) A representative experiment grid must produce identical reports
   serial (jobs=1) and parallel (jobs=4) — same ids, same tables, same
   rendered bytes. table1 exercises the workload cache from several
   domains at once; fig8 exercises the market cache. *)
let test_parallel_serial_identical () =
  let grid =
    List.map Experiment.find [ "table1"; "fig1"; "fig3"; "fig4"; "fig5"; "fig8" ]
  in
  let serial = Runner.run_experiments ~jobs:1 grid in
  let parallel = Runner.run_experiments ~jobs:4 grid in
  Alcotest.(check (list string))
    "ids in submission order"
    (List.map (fun (r : Runner.result) -> r.Runner.id) serial)
    (List.map (fun (r : Runner.result) -> r.Runner.id) parallel);
  List.iter2
    (fun (a : Runner.result) (b : Runner.result) ->
      if a.Runner.tables <> b.Runner.tables then
        Alcotest.failf "experiment %s: parallel tables diverge" a.Runner.id)
    serial parallel;
  Alcotest.(check string)
    "byte-identical rendering" (Runner.render serial) (Runner.render parallel)

(* Plain pool mapping: ordering and the serial fallback. *)
let test_pool_map_order () =
  let input = Array.init 100 (fun i -> i) in
  let expected = Array.map (fun i -> (i * i) + 1) input in
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (array int))
        "parallel order" expected
        (Engine.Pool.map pool (fun i -> (i * i) + 1) input));
  Engine.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check (array int))
        "serial fallback" expected
        (Engine.Pool.map pool (fun i -> (i * i) + 1) input))

(* (b) The in-memory tier returns the physically same artifact until an
   explicit invalidate forces a recomputation. *)
let test_cache_physical_equality () =
  let cache = Engine.Cache.create ~name:"test-mem" () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    Array.init 4 float_of_int
  in
  let key = ("eu_isp", 1.1, 20.) in
  let first = Engine.Cache.find_or_add cache ~key compute in
  let second = Engine.Cache.find_or_add cache ~key compute in
  Alcotest.(check bool) "physically equal" true (first == second);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "one hit" 1 (Engine.Cache.stats cache).Engine.Cache.hits;
  Engine.Cache.invalidate cache ~key;
  let third = Engine.Cache.find_or_add cache ~key compute in
  Alcotest.(check int) "recomputed after invalidate" 2 !calls;
  Alcotest.(check bool) "fresh artifact" false (third == first);
  (* A different key never aliases. *)
  let other = Engine.Cache.find_or_add cache ~key:("cdn", 1.1, 20.) compute in
  Alcotest.(check int) "distinct keys computed separately" 3 !calls;
  Alcotest.(check bool) "distinct artifact" false (other == third)

(* (c) The disk tier round-trips artifacts across cache instances and
   rejects payloads written under a stale schema version. *)
let test_cache_disk_tier () =
  let dir =
    let f = Filename.temp_file "engine-cache" "" in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f
  in
  Engine.Cache.enable_disk ~dir;
  Fun.protect ~finally:Engine.Cache.disable_disk @@ fun () ->
  let calls = ref 0 in
  let compute () =
    incr calls;
    [ ("fit", 42.5); ("gamma", 0.25) ]
  in
  let key = ("market", "internet2", 0.2) in
  let c1 = Engine.Cache.create ~name:"test-disk" ~schema:"v1" () in
  let v1 = Engine.Cache.find_or_add c1 ~key compute in
  Alcotest.(check int) "computed and written" 1 !calls;
  (* A fresh cache (cold memory tier, same schema) loads from disk. *)
  let c2 = Engine.Cache.create ~name:"test-disk" ~schema:"v1" () in
  let v2 = Engine.Cache.find_or_add c2 ~key compute in
  Alcotest.(check int) "disk hit, no recomputation" 1 !calls;
  Alcotest.(check bool) "round-trips structurally" true (v1 = v2);
  Alcotest.(check int)
    "counted as disk hit" 1 (Engine.Cache.stats c2).Engine.Cache.disk_hits;
  (* A bumped schema must reject the stale payload and recompute. *)
  let c3 = Engine.Cache.create ~name:"test-disk" ~schema:"v2" () in
  let _ = Engine.Cache.find_or_add c3 ~key compute in
  Alcotest.(check int) "stale schema rejected" 2 !calls;
  Alcotest.(check int)
    "stale read is a miss" 1 (Engine.Cache.stats c3).Engine.Cache.misses

(* (d) A raising task is reported (deterministically: lowest failing
   index) without deadlocking the queue; the pool stays usable. *)
let test_pool_survives_exception () =
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      (match
         Engine.Pool.map pool
           (fun i -> if i mod 5 = 3 then failwith "boom" else i)
           (Array.init 16 (fun i -> i))
       with
      | _ -> Alcotest.fail "expected Task_failed"
      | exception Engine.Pool.Task_failed { index; exn; _ } ->
          Alcotest.(check int) "lowest failing index" 3 index;
          Alcotest.(check string) "original exception" "boom"
            (match exn with Failure m -> m | _ -> Printexc.to_string exn));
      (* The queue drained; the same pool still schedules new work. *)
      let again =
        Engine.Pool.map pool (fun i -> i + 1) (Array.init 8 (fun i -> i))
      in
      Alcotest.(check (array int))
        "pool alive after failure"
        (Array.init 8 (fun i -> i + 1))
        again)

let suite =
  [
    Alcotest.test_case "parallel = serial on an experiment grid" `Slow
      test_parallel_serial_identical;
    Alcotest.test_case "pool map preserves order" `Quick test_pool_map_order;
    Alcotest.test_case "cache memory tier: physical equality + invalidate"
      `Quick test_cache_physical_equality;
    Alcotest.test_case "cache disk tier: round-trip + schema stamp" `Quick
      test_cache_disk_tier;
    Alcotest.test_case "pool survives raising tasks" `Quick
      test_pool_survives_exception;
  ]
