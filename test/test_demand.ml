open Flowgen

let record ~src ~dst ~bytes ~first_s =
  {
    Netflow.src = Ipv4.of_string src;
    dst = Ipv4.of_string dst;
    src_port = 1000;
    dst_port = 443;
    proto = 6;
    bytes;
    packets = 1.;
    first_s;
    last_s = first_s + 3600;
    router = 0;
  }

let test_by_endpoint_pair () =
  let records =
    [
      record ~src:"10.0.0.1" ~dst:"10.1.0.1" ~bytes:100. ~first_s:0;
      record ~src:"10.0.0.1" ~dst:"10.1.0.1" ~bytes:200. ~first_s:3600;
      record ~src:"10.0.0.2" ~dst:"10.1.0.1" ~bytes:50. ~first_s:0;
    ]
  in
  let aggs = Demand.by_endpoint_pair records in
  Alcotest.(check int) "two pairs" 2 (List.length aggs);
  let first = List.hd aggs in
  Alcotest.(check (float 1e-9)) "bytes merged" 300. first.Demand.bytes;
  Alcotest.(check int) "records counted" 2 first.Demand.records

let test_by_destination () =
  let records =
    [
      record ~src:"10.0.0.1" ~dst:"10.1.0.1" ~bytes:100. ~first_s:0;
      record ~src:"10.0.0.2" ~dst:"10.1.0.1" ~bytes:50. ~first_s:0;
      record ~src:"10.0.0.2" ~dst:"10.2.0.1" ~bytes:50. ~first_s:0;
    ]
  in
  let aggs = Demand.by_destination records in
  Alcotest.(check int) "two destinations" 2 (List.length aggs);
  Alcotest.(check (float 1e-9)) "merged across sources" 150. (List.hd aggs).Demand.bytes

let test_mbps_conversion () =
  let records = [ record ~src:"10.0.0.1" ~dst:"10.1.0.1" ~bytes:1e6 ~first_s:0 ] in
  let aggs = Demand.by_endpoint_pair ~window_s:8 records in
  Alcotest.(check (float 1e-9)) "1 Mbps" 1. (List.hd aggs).Demand.mbps

let test_total_and_vector () =
  let records =
    [
      record ~src:"10.0.0.1" ~dst:"10.1.0.1" ~bytes:4e6 ~first_s:0;
      record ~src:"10.0.0.2" ~dst:"10.1.0.2" ~bytes:8e6 ~first_s:0;
    ]
  in
  let aggs = Demand.by_endpoint_pair ~window_s:8 records in
  Alcotest.(check (float 1e-9)) "total" 12. (Demand.total_mbps aggs);
  Alcotest.(check (array (float 1e-9))) "vector" [| 4.; 8. |] (Demand.demands aggs)

let test_invalid_window () =
  Alcotest.check_raises "window 0" (Invalid_argument "Demand: non-positive window")
    (fun () -> ignore (Demand.by_endpoint_pair ~window_s:0 []))

let test_empty () =
  Alcotest.(check int) "no records" 0 (List.length (Demand.by_endpoint_pair []))

let test_window_edge_record () =
  (* Grouping is purely by key: a record timed exactly at the window
     boundary (first_s = window_s) still aggregates — the window length
     only scales the rate. A capture cut at the edge must not silently
     drop the last record. *)
  let records =
    [
      record ~src:"10.0.0.1" ~dst:"10.1.0.1" ~bytes:1e6 ~first_s:0;
      record ~src:"10.0.0.1" ~dst:"10.1.0.1" ~bytes:1e6 ~first_s:8;
    ]
  in
  let aggs = Demand.by_endpoint_pair ~window_s:8 records in
  Alcotest.(check int) "one aggregate" 1 (List.length aggs);
  Alcotest.(check int) "both records" 2 (List.hd aggs).Demand.records;
  Alcotest.(check (float 1e-9)) "rate over the window" 2. (List.hd aggs).Demand.mbps

let test_one_second_window () =
  (* window_s = 1: the smallest legal window; mbps = bytes * 8e-6. *)
  let records = [ record ~src:"10.0.0.1" ~dst:"10.1.0.1" ~bytes:5e5 ~first_s:0 ] in
  let aggs = Demand.by_endpoint_pair ~window_s:1 records in
  Alcotest.(check (float 1e-9)) "4 Mbps" 4. (List.hd aggs).Demand.mbps

let test_acc_matches_batch () =
  (* The streaming accumulator IS the batch grouping: one record at a
     time through Acc equals the list entry point, order included. *)
  let records =
    [
      record ~src:"10.0.0.2" ~dst:"10.1.0.1" ~bytes:50. ~first_s:0;
      record ~src:"10.0.0.1" ~dst:"10.1.0.1" ~bytes:100. ~first_s:0;
      record ~src:"10.0.0.2" ~dst:"10.1.0.1" ~bytes:25. ~first_s:3600;
      record ~src:"10.0.0.1" ~dst:"10.2.0.9" ~bytes:75. ~first_s:3600;
    ]
  in
  let acc = Demand.Acc.create ~key_of:Demand.endpoint_pair_key () in
  List.iter (Demand.Acc.observe acc) records;
  Alcotest.(check int) "distinct keys" 3 (Demand.Acc.size acc);
  let streaming = Demand.Acc.aggregates acc ~window_s:3600 in
  let batch = Demand.by_endpoint_pair ~window_s:3600 records in
  let flat a =
    Printf.sprintf "%s>%s b=%g r=%d m=%g"
      (Ipv4.to_string a.Demand.src)
      (Ipv4.to_string a.Demand.dst)
      a.Demand.bytes a.Demand.records a.Demand.mbps
  in
  Alcotest.(check (list string))
    "same aggregates, same order" (List.map flat batch) (List.map flat streaming)

let test_acc_invalid_window () =
  let acc = Demand.Acc.create ~key_of:Demand.destination_key () in
  Alcotest.check_raises "acc window 0"
    (Invalid_argument "Demand: non-positive window") (fun () ->
      ignore (Demand.Acc.aggregates acc ~window_s:0))

let prop_total_bytes_preserved =
  QCheck.Test.make ~name:"aggregation preserves total bytes" ~count:100
    QCheck.(list_of_size Gen.(0 -- 40) (pair (int_range 0 5) (float_range 1. 1e6)))
    (fun specs ->
      let records =
        List.map
          (fun (dst, bytes) ->
            record ~src:"10.0.0.1"
              ~dst:(Printf.sprintf "10.1.0.%d" dst)
              ~bytes ~first_s:0)
          specs
      in
      let aggs = Demand.by_destination records in
      let total_in =
        List.fold_left (fun acc (r : Netflow.record) -> acc +. r.Netflow.bytes) 0. records
      in
      let total_out = List.fold_left (fun acc a -> acc +. a.Demand.bytes) 0. aggs in
      abs_float (total_in -. total_out) < 1e-6 *. (1. +. total_in))

let suite =
  [
    Alcotest.test_case "by endpoint pair" `Quick test_by_endpoint_pair;
    Alcotest.test_case "by destination" `Quick test_by_destination;
    Alcotest.test_case "mbps conversion" `Quick test_mbps_conversion;
    Alcotest.test_case "total and vector" `Quick test_total_and_vector;
    Alcotest.test_case "invalid window" `Quick test_invalid_window;
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "record on the window edge" `Quick test_window_edge_record;
    Alcotest.test_case "one-second window" `Quick test_one_second_window;
    Alcotest.test_case "streaming acc = batch" `Quick test_acc_matches_batch;
    Alcotest.test_case "acc invalid window" `Quick test_acc_invalid_window;
    QCheck_alcotest.to_alcotest prop_total_bytes_preserved;
  ]
