(* The lint linting itself: fixture snippets per rule (positive +
   negative), suppression-comment honoring, baseline add/remove
   round-trips and the JSON-reporter schema.

   Note on fixtures: suppression markers inside these string literals
   are visible to the *repo* lint too (its scanner is textual), so
   well-formed fixture suppressions use the ASCII '-' separator (they
   are harmless no-ops at test_lint.ml's own scope) and malformed ones
   are assembled by concatenation so the marker never appears
   contiguously in this file. *)

let lines = String.concat "\n"

(* Statuses for [rule] in a one-fixture check. *)
let statuses_of ~file contents rule =
  Analysis.Lint.check_source ~file contents
  |> List.filter_map (fun ((f : Analysis.Finding.t), status) ->
         if f.Analysis.Finding.rule = rule then Some status else None)

let check_rule ~file contents rule expected () =
  Alcotest.(check int)
    (Printf.sprintf "%s findings for %s in %s" rule file contents)
    expected
    (List.length (statuses_of ~file contents rule))

(* --- one positive + one negative fixture per rule ------------------------- *)

let d001 () =
  check_rule ~file:"lib/fake/mod.ml" "let f () = print_endline \"x\"" "D001" 1
    ();
  check_rule ~file:"lib/fake/mod.ml" "let f () = Printf.printf \"%d\" 1" "D001"
    1 ();
  (* stderr and caller-supplied formatters are fine; bin/ owns stdout *)
  check_rule ~file:"lib/fake/mod.ml"
    "let f ppf = Format.fprintf ppf \"x\"; Printf.eprintf \"y\"" "D001" 0 ();
  check_rule ~file:"bin/fake.ml" "let f () = print_endline \"x\"" "D001" 0 ()

let d002 () =
  check_rule ~file:"lib/fake/mod.ml"
    "let f h = Hashtbl.fold (fun k v a -> (k, v) :: a) h []" "D002" 1 ();
  check_rule ~file:"lib/fake/mod.ml" "let f h = Hashtbl.iter ignore h" "D002" 1
    ();
  check_rule ~file:"lib/fake/mod.ml" "let f h = Tbl.sorted_bindings h" "D002" 0
    ();
  (* point lookups are order-free *)
  check_rule ~file:"lib/fake/mod.ml" "let f h k = Hashtbl.find_opt h k" "D002"
    0 ();
  check_rule ~file:"test/fake.ml" "let f h = Hashtbl.iter ignore h" "D002" 0 ()

let d003 () =
  check_rule ~file:"lib/core/capture.ml" "let t () = Unix.gettimeofday ()"
    "D003" 1 ();
  check_rule ~file:"lib/fake/mod.ml" "let s () = Random.self_init ()" "D003" 1
    ();
  (* the engine and the runner book wall time legitimately *)
  check_rule ~file:"lib/engine/pool.ml" "let t () = Unix.gettimeofday ()"
    "D003" 0 ();
  check_rule ~file:"lib/core/runner.ml" "let t () = Sys.time ()" "D003" 0 ()

let d003_serve () =
  (* The streaming service's determinism hinges on injected time: the
     daemon must not be able to grow a wall-clock (or self-seeded
     randomness) dependency without tripping the lint. bin/ injects the
     real clock and stays exempt. *)
  check_rule ~file:"lib/serve/daemon.ml" "let t () = Unix.gettimeofday ()"
    "D003" 1 ();
  check_rule ~file:"lib/serve/window.ml" "let t () = Unix.time ()" "D003" 1 ();
  check_rule ~file:"lib/serve/retier.ml" "let s () = Random.self_init ()"
    "D003" 1 ();
  check_rule ~file:"lib/serve/clock.ml" "let t () = Sys.time ()" "D003" 1 ();
  (* the sanctioned shape: a clock value threaded in from outside *)
  check_rule ~file:"lib/serve/daemon.ml"
    "let run ~clock () = Clock.now clock" "D003" 0 ();
  check_rule ~file:"bin/tiered_cli.ml"
    "let clock = Serve.Clock.of_fn Unix.gettimeofday" "D003" 0 ()

let d003_idents () =
  (* the long tail of clock/entropy reads: process CPU clocks and
     self-seeded explicit Random states are just as nondeterministic *)
  check_rule ~file:"lib/fake/mod.ml"
    "let s () = Random.State.make_self_init ()" "D003" 1 ();
  check_rule ~file:"lib/fake/mod.ml" "let t () = Unix.times ()" "D003" 1 ();
  check_rule ~file:"lib/fake/mod.ml" "let t () = Sys.cpu_time ()" "D003" 1 ();
  (* an explicitly-seeded state is the sanctioned shape *)
  check_rule ~file:"lib/fake/mod.ml"
    "let s seed = Random.State.make [| seed |]" "D003" 0 ();
  (* engine plumbing and bin/ keep their exemption *)
  check_rule ~file:"lib/engine/pool.ml" "let t () = Sys.cpu_time ()" "D003" 0
    ();
  check_rule ~file:"bin/fake.ml" "let s () = Random.State.make_self_init ()"
    "D003" 0 ()

let d004 () =
  check_rule ~file:"lib/fake/mod.ml" "let f a b = a == b" "D004" 1 ();
  check_rule ~file:"lib/fake/mod.ml" "let f a b = a != b" "D004" 1 ();
  check_rule ~file:"lib/fake/mod.ml" "let f a b = a = b || a <> b" "D004" 0 ();
  check_rule ~file:"test/fake.ml" "let f a b = a == b" "D004" 0 ()

let d004_kernel () =
  (* The DP kernel is exactly where a physical-equality shortcut on a
     cached row looks tempting and silently breaks the cut-for-cut
     contract (two structurally equal prev rows are NOT the same
     box after a refill). Pin the rule on the kernel files. *)
  check_rule ~file:"lib/numerics/segdp.ml"
    "let warm prev cached = if prev == cached then reuse () else refill ()"
    "D004" 1 ();
  check_rule ~file:"lib/numerics/segdp.ml"
    "let dirty prev cached = prev != cached" "D004" 1 ();
  (* structural comparison of the retained state is the sanctioned fix *)
  check_rule ~file:"lib/numerics/segdp.ml"
    "let warm prev cached = if prev = cached then reuse () else refill ()"
    "D004" 0 ();
  check_rule ~file:"lib/core/strategy.ml"
    "let same_regions a b = a == b" "D004" 1 ()

let d005 () =
  check_rule ~file:"lib/fake/mod.ml"
    "let f xs = Array.sort (fun a b -> compare a b) xs" "D005" 1 ();
  check_rule ~file:"lib/fake/mod.ml"
    "let f xs = List.sort_uniq Stdlib.compare xs" "D005" 1 ();
  (* passing the bare comparator is just as representational *)
  check_rule ~file:"lib/fake/mod.ml" "let c = compare" "D005" 1 ();
  (* monomorphic / module-qualified comparators are the fix *)
  check_rule ~file:"lib/fake/mod.ml"
    "let f xs = Array.sort Float.compare xs; List.sort Int.compare []" "D005" 0
    ();
  check_rule ~file:"lib/fake/mod.ml"
    "let f a b = match String.compare a b with 0 -> Finding.compare a b | c -> c"
    "D005" 0 ();
  (* lib/-scoped, like the other determinism rules *)
  check_rule ~file:"test/fake.ml" "let f xs = List.sort compare xs" "D005" 0 ();
  check_rule ~file:"bin/fake.ml" "let f xs = List.sort compare xs" "D005" 0 ()

let d005_kernel () =
  (* Region boundaries are sorted ints and candidate values are floats;
     a bare polymorphic compare on either would walk the representation
     (and NaN-order surprises in the float case). The kernel files must
     stay on monomorphic comparators. *)
  check_rule ~file:"lib/core/strategy.ml"
    "let region_starts = List.sort_uniq compare (0 :: starts)" "D005" 1 ();
  check_rule ~file:"lib/numerics/segdp.ml"
    "let order vs = Array.sort (fun a b -> compare b a) vs" "D005" 1 ();
  check_rule ~file:"lib/core/strategy.ml"
    "let region_starts = List.sort_uniq Int.compare (0 :: starts)" "D005" 0 ();
  check_rule ~file:"lib/numerics/segdp.ml"
    "let order vs = Array.sort (fun a b -> Float.compare b a) vs" "D005" 0 ()

let h001 () =
  check_rule ~file:"lib/fake/mod.ml" "let f () = exit 1" "H001" 1 ();
  check_rule ~file:"lib/engine/proc.ml" "let f () = exit 0" "H001" 0 ();
  check_rule ~file:"lib/fake/mod.ml" "let f () = raise Exit" "H001" 0 ();
  check_rule ~file:"bin/fake.ml" "let f () = exit 2" "H001" 0 ()

let h002 () =
  check_rule ~file:"lib/fake/mod.ml" "let s v flags = Marshal.to_string v flags"
    "H002" 1 ();
  (* a bare Marshal.to_* passed around hides the flags decision too *)
  check_rule ~file:"lib/fake/mod.ml" "let s = Marshal.to_string" "H002" 1 ();
  check_rule ~file:"lib/fake/mod.ml" "let s v = Marshal.to_string v []" "H002"
    0 ();
  check_rule ~file:"lib/fake/mod.ml"
    "let s v = Marshal.to_string v [ Marshal.Closures ]" "H002" 0 ();
  (* H002 applies outside lib/ as well *)
  check_rule ~file:"test/fake.ml" "let s v flags = Marshal.to_bytes v flags"
    "H002" 1 ()

let h003 () =
  let findings =
    Analysis.Rules.missing_interfaces
      ~files:
        [ "lib/a/x.ml"; "lib/a/x.mli"; "lib/a/y.ml"; "bin/z.ml"; "test/t.ml" ]
  in
  Alcotest.(check (list string))
    "only the unpaired lib module"
    [ "lib/a/y.ml" ]
    (List.map (fun (f : Analysis.Finding.t) -> f.Analysis.Finding.file) findings);
  List.iter
    (fun (f : Analysis.Finding.t) ->
      Alcotest.(check string) "rule id" "H003" f.Analysis.Finding.rule)
    findings

let parse_error () =
  match statuses_of ~file:"lib/fake/mod.ml" "let let let" "E001" with
  | [ Analysis.Finding.Active ] -> ()
  | other ->
      Alcotest.failf "expected one active E001, got %d" (List.length other)

(* --- suppression honoring ------------------------------------------------- *)

let suppression_honored () =
  let fixture =
    lines
      [
        "(* lint: allow D002 - fixture: order is erased downstream *)";
        "let f h = Hashtbl.fold (fun k v a -> (k, v) :: a) h []";
      ]
  in
  (match statuses_of ~file:"lib/fake/mod.ml" fixture "D002" with
  | [ Analysis.Finding.Suppressed ] -> ()
  | _ -> Alcotest.fail "comment-above suppression should mark Suppressed");
  (* same-line form *)
  let same_line =
    "let f h = Hashtbl.iter ignore h (* lint: allow D002 - fixture *)"
  in
  (match statuses_of ~file:"lib/fake/mod.ml" same_line "D002" with
  | [ Analysis.Finding.Suppressed ] -> ()
  | _ -> Alcotest.fail "same-line suppression should mark Suppressed");
  (* a suppression for a different rule must not silence D002 *)
  let wrong_rule =
    lines
      [
        "(* lint: allow D001 - fixture: wrong rule on purpose *)";
        "let f h = Hashtbl.iter ignore h";
      ]
  in
  (match statuses_of ~file:"lib/fake/mod.ml" wrong_rule "D002" with
  | [ Analysis.Finding.Active ] -> ()
  | _ -> Alcotest.fail "unrelated suppression must leave the finding Active");
  (* coverage is tight: two lines below the comment is out of range *)
  let too_far =
    lines
      [
        "(* lint: allow D002 - fixture: too far above *)";
        "let g = 1";
        "let f h = Hashtbl.iter ignore h";
      ]
  in
  match statuses_of ~file:"lib/fake/mod.ml" too_far "D002" with
  | [ Analysis.Finding.Active ] -> ()
  | _ -> Alcotest.fail "suppression must not reach two lines down"

let suppression_block () =
  (* One marker covers the whole binding that follows the comment
     close, however many lines it spans; coverage stops at the next
     same-or-outer-indentation binding keyword. *)
  let multi_line =
    lines
      [
        "(* lint: allow D002 - fixture: whole binding is covered *)";
        "let f h =";
        "  let acc = ref [] in";
        "  Hashtbl.iter (fun k v -> acc := (k, v) :: !acc) h;";
        "  !acc";
      ]
  in
  (match statuses_of ~file:"lib/fake/mod.ml" multi_line "D002" with
  | [ Analysis.Finding.Suppressed ] -> ()
  | _ -> Alcotest.fail "line 4 of the covered binding should be Suppressed");
  (* the next top-level binding is outside the block *)
  let next_binding =
    lines
      [
        "(* lint: allow D002 - fixture: only the first binding *)";
        "let f h =";
        "  Hashtbl.length h";
        "let g h = Hashtbl.iter ignore h";
      ]
  in
  (match statuses_of ~file:"lib/fake/mod.ml" next_binding "D002" with
  | [ Analysis.Finding.Active ] -> ()
  | _ -> Alcotest.fail "the binding after the covered one must stay Active");
  (* multi-line comment: the block starts after the comment close *)
  let spanning_comment =
    lines
      [
        "(* lint: allow D002 - fixture: a justification long enough";
        "   to spill onto a second comment line *)";
        "let f h =";
        "  Hashtbl.fold (fun k v a -> (k, v) :: a) h []";
      ]
  in
  match statuses_of ~file:"lib/fake/mod.ml" spanning_comment "D002" with
  | [ Analysis.Finding.Suppressed ] -> ()
  | _ -> Alcotest.fail "coverage must start at the comment close, not its open"

let suppression_malformed () =
  (* Assembled by concatenation so the repo lint does not read this
     test's own source as containing a malformed marker. *)
  let missing_ids = "(* lint" ^ ": allow - no rule ids here *)\nlet x = 1" in
  (match statuses_of ~file:"lib/fake/mod.ml" missing_ids "S001" with
  | [ Analysis.Finding.Active ] -> ()
  | other ->
      Alcotest.failf "missing ids: expected one active S001, got %d"
        (List.length other));
  let missing_reason =
    "(* lint" ^ ": allow D002 *)\nlet f h = Hashtbl.iter ignore h"
  in
  (match statuses_of ~file:"lib/fake/mod.ml" missing_reason "S001" with
  | [ Analysis.Finding.Active ] -> ()
  | other ->
      Alcotest.failf "missing reason: expected one active S001, got %d"
        (List.length other));
  (* ... and a malformed suppression suppresses nothing *)
  match statuses_of ~file:"lib/fake/mod.ml" missing_reason "D002" with
  | [ Analysis.Finding.Active ] -> ()
  | _ -> Alcotest.fail "malformed suppression must not silence the finding"

(* --- baseline ------------------------------------------------------------- *)

(* Pair every fixture module with an interface so H003 stays out of
   the way of the rule under test. *)
let violation_source = ("lib/fake/mod.ml", "let f () = print_endline \"x\"")
let violation_mli = ("lib/fake/mod.mli", "val f : unit -> unit")

let baseline_roundtrip () =
  let outcome = Analysis.Lint.run_sources [ violation_source; violation_mli ] in
  let active = Analysis.Lint.active outcome in
  Alcotest.(check int) "one active before baselining" 1 (List.length active);
  let entries = Analysis.Baseline.of_findings active in
  let path = Filename.temp_file "tiered-lint-baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Analysis.Baseline.save path entries;
      let loaded =
        match Analysis.Baseline.load path with
        | Ok b -> b
        | Error msg -> Alcotest.failf "baseline load: %s" msg
      in
      Alcotest.(check bool) "save/load round-trip" true (loaded = entries);
      (* add: the baselined finding no longer fails the build *)
      let outcome' =
        Analysis.Lint.run_sources ~baseline:loaded
          [ violation_source; violation_mli ]
      in
      Alcotest.(check int) "no active after baselining" 0
        (List.length (Analysis.Lint.active outcome'));
      Alcotest.(check int) "nothing stale while it still fires" 0
        (List.length outcome'.Analysis.Lint.stale);
      (* remove: once the violation is fixed the entry reads as stale *)
      let fixed = ("lib/fake/mod.ml", "let f ppf = Format.fprintf ppf \"x\"") in
      let outcome'' =
        Analysis.Lint.run_sources ~baseline:loaded [ fixed; violation_mli ]
      in
      Alcotest.(check int) "fixed source stays clean" 0
        (List.length (Analysis.Lint.active outcome''));
      Alcotest.(check int) "entry reported stale" 1
        (List.length outcome''.Analysis.Lint.stale))

let baseline_missing_file () =
  match Analysis.Baseline.load "/nonexistent/lint/baseline.json" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "missing baseline must read as empty"
  | Error msg -> Alcotest.failf "missing baseline must not error: %s" msg

(* --- JSON reporter schema -------------------------------------------------- *)

let json_schema () =
  let outcome =
    Analysis.Lint.run_sources
      [
        violation_source;
        violation_mli;
        ("lib/fake/clean.ml", "let ok = 42");
        ("lib/fake/clean.mli", "val ok : int");
      ]
  in
  let rendered =
    Analysis.Json.to_string
      (Analysis.Reporter.json ~reported:outcome.Analysis.Lint.reported
         ~stale:outcome.Analysis.Lint.stale)
  in
  let json =
    match Analysis.Json.of_string rendered with
    | Ok j -> j
    | Error msg -> Alcotest.failf "report does not re-parse: %s" msg
  in
  let field name j =
    match Analysis.Json.member name j with
    | Some v -> v
    | None -> Alcotest.failf "missing %S field" name
  in
  Alcotest.(check (option int))
    "version" (Some 1)
    (Analysis.Json.to_int (field "version" json));
  Alcotest.(check (option string))
    "tool" (Some "tiered-lint")
    (Analysis.Json.to_str (field "tool" json));
  let findings =
    match Analysis.Json.to_list (field "findings" json) with
    | Some l -> l
    | None -> Alcotest.fail "findings must be a list"
  in
  Alcotest.(check bool) "at least one finding" true (findings <> []);
  List.iter
    (fun f ->
      List.iter
        (fun key -> ignore (field key f))
        [ "rule"; "file"; "line"; "col"; "message"; "status" ];
      match Analysis.Json.to_str (field "status" f) with
      | Some ("active" | "suppressed" | "baselined") -> ()
      | _ -> Alcotest.fail "status must be a known enum value")
    findings;
  let summary = field "summary" json in
  List.iter
    (fun key ->
      match Analysis.Json.to_int (field key summary) with
      | Some n when n >= 0 -> ()
      | _ -> Alcotest.failf "summary.%s must be a non-negative int" key)
    [ "active"; "suppressed"; "baselined"; "stale_baseline" ];
  (* count consistency: summary.active equals the active findings *)
  Alcotest.(check (option int))
    "summary.active consistent"
    (Some (List.length (Analysis.Lint.active outcome)))
    (Analysis.Json.to_int (field "active" summary))

let catalog_closed () =
  (* Every rule id the checker can emit is documented in the catalog. *)
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " catalogued") true (Analysis.Rules.known id))
    [
      "D001"; "D002"; "D003"; "D004"; "D005"; "H001"; "H002"; "H003"; "S001";
      "E001"; "T001"; "T002"; "T003"; "E002";
    ]

let suite =
  [
    Alcotest.test_case "D001 stdout writes" `Quick d001;
    Alcotest.test_case "D002 raw Hashtbl traversal" `Quick d002;
    Alcotest.test_case "D003 clock/randomness whitelist" `Quick d003;
    Alcotest.test_case "D003 covers lib/serve" `Quick d003_serve;
    Alcotest.test_case "D003 CPU clocks and self-seeded states" `Quick
      d003_idents;
    Alcotest.test_case "D004 physical equality" `Quick d004;
    Alcotest.test_case "D004 on the DP kernel files" `Quick d004_kernel;
    Alcotest.test_case "D005 bare polymorphic compare" `Quick d005;
    Alcotest.test_case "D005 on the DP kernel files" `Quick d005_kernel;
    Alcotest.test_case "H001 exit outside worker entry" `Quick h001;
    Alcotest.test_case "H002 Marshal flags literal" `Quick h002;
    Alcotest.test_case "H003 paired .mli" `Quick h003;
    Alcotest.test_case "E001 parse failure" `Quick parse_error;
    Alcotest.test_case "suppressions honored" `Quick suppression_honored;
    Alcotest.test_case "suppression covers the following block" `Quick
      suppression_block;
    Alcotest.test_case "malformed suppressions flagged" `Quick
      suppression_malformed;
    Alcotest.test_case "baseline add/remove round-trip" `Quick
      baseline_roundtrip;
    Alcotest.test_case "missing baseline reads empty" `Quick
      baseline_missing_file;
    Alcotest.test_case "JSON reporter schema" `Quick json_schema;
    Alcotest.test_case "rule catalog closed" `Quick catalog_closed;
  ]
