(* Golden regression suite: every registry experiment's rendered bytes
   are pinned in test/golden/<id>.expected. Each experiment is re-run
   at jobs=1 and at jobs=$TIERED_GOLDEN_JOBS (default 4) and diffed
   byte-for-byte — locking down both the numbers and the determinism
   of the cell scheduler. On mismatch the actual bytes are dumped to
   golden-diff/ (uploaded by CI) and the failure message points at the
   promote workflow for intentional regenerations. *)

open Tiered

let golden_jobs =
  match Sys.getenv_opt "TIERED_GOLDEN_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 4)
  | None -> 4

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Under `dune runtest` the suite runs in _build/default/test/ next to
   the golden/ deps; when executed from the project root (`dune exec
   test/test_main.exe`) fall back to the source-tree copy. *)
let golden_path id =
  let name = id ^ ".expected" in
  let local = Filename.concat "golden" name in
  if Sys.file_exists local then local
  else Filename.concat (Filename.concat "test" "golden") name

let dump_mismatch ~id ~jobs actual =
  let dir = "golden-diff" in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let path = Filename.concat dir (Printf.sprintf "%s.jobs%d.actual" id jobs) in
  let oc = open_out_bin path in
  output_string oc actual;
  close_out oc;
  path

let check_experiment id () =
  let expected = read_file (golden_path id) in
  List.iter
    (fun jobs ->
      let actual =
        Runner.render (Runner.run_experiments ~jobs [ Experiment.find id ])
      in
      if not (String.equal expected actual) then
        let path = dump_mismatch ~id ~jobs actual in
        Alcotest.failf
          "golden mismatch for %s at jobs=%d (%d expected vs %d actual \
           bytes); actual dumped to %s — if the change is intentional, \
           regenerate with `make golden-regen` and commit the diff"
          id jobs (String.length expected) (String.length actual) path)
    (1 :: (if golden_jobs = 1 then [] else [ golden_jobs ]))

(* The whole registry in one run: jobs=1 and jobs=N renderings must be
   byte-identical, and both must equal the concatenation of the
   per-experiment goldens (experiments are independent, so rendering
   them together or alone gives the same bytes per table). *)
let check_full_registry () =
  let goldens =
    String.concat ""
      (List.map
         (fun (e : Experiment.t) -> read_file (golden_path e.Experiment.id))
         Experiment.all)
  in
  let serial = Runner.render (Runner.run_experiments ~jobs:1 Experiment.all) in
  let parallel =
    Runner.render (Runner.run_experiments ~jobs:golden_jobs Experiment.all)
  in
  if not (String.equal serial parallel) then
    let path = dump_mismatch ~id:"registry" ~jobs:golden_jobs parallel in
    Alcotest.failf
      "full registry render diverges between jobs=1 and jobs=%d; actual \
       dumped to %s"
      golden_jobs path
  else if not (String.equal serial goldens) then
    let path = dump_mismatch ~id:"registry" ~jobs:1 serial in
    Alcotest.failf
      "full registry render diverges from the concatenated goldens (%d vs %d \
       bytes); actual dumped to %s — regenerate with `make golden-regen` if \
       intentional"
      (String.length goldens) (String.length serial) path

(* The subprocess backend must reproduce the pinned bytes too:
   table1 (workload cache) and fig8 (market cache) re-run through
   worker subprocesses and diff against the same goldens. If the
   backend cannot spawn on this host, the pool degrades to domains —
   the bytes must still match either way, so no skip is needed. *)
let check_procs_backend () =
  List.iter
    (fun id ->
      let expected = read_file (golden_path id) in
      let actual =
        Runner.render
          (Runner.run_experiments ~backend:Engine.Pool.Procs ~jobs:2
             [ Experiment.find id ])
      in
      if not (String.equal expected actual) then
        let path = dump_mismatch ~id:(id ^ ".procs") ~jobs:2 actual in
        Alcotest.failf
          "golden mismatch for %s under --backend procs (%d expected vs %d \
           actual bytes); actual dumped to %s"
          id (String.length expected) (String.length actual) path)
    [ "table1"; "fig8" ]

let suite =
  List.map
    (fun (e : Experiment.t) ->
      Alcotest.test_case
        (Printf.sprintf "%s matches golden at jobs={1,%d}" e.Experiment.id
           golden_jobs)
        `Slow
        (check_experiment e.Experiment.id))
    Experiment.all
  @ [
      Alcotest.test_case "full registry = concatenated goldens, any jobs"
        `Slow check_full_registry;
      Alcotest.test_case "goldens reproduce under the subprocess backend"
        `Slow check_procs_backend;
    ]
