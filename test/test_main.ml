(* Must come first: the subprocess-backend tests re-invoke this very
   executable as an engine worker (--engine-worker); serve tasks and
   exit before Alcotest parses argv. *)
let () = Engine.Proc.maybe_run_worker ()

(* Same for the TCP fleet backend: Exec-mode tests spawn this binary
   with --engine-remote-worker=connect:... *)
let () = Engine.Remote.maybe_run_worker ()

let () =
  Alcotest.run "tiered-pricing"
    [
      ("numerics.rng", Test_rng.suite);
      ("numerics.dist", Test_dist.suite);
      ("numerics.stats", Test_stats.suite);
      ("numerics.solve", Test_solve.suite);
      ("numerics.gradient", Test_gradient.suite);
      ("numerics.fit", Test_fit.suite);
      ("numerics.vec", Test_vec.suite);
      ("numerics.segdp", Test_segdp.suite);
      ("numerics.segdp.hostile", Test_segdp_hostile.suite);
      ("netsim.geo", Test_geo.suite);
      ("netsim.cities", Test_cities.suite);
      ("netsim.graph", Test_graph.suite);
      ("netsim.topology", Test_topology.suite);
      ("netsim.presets", Test_presets.suite);
      ("flowgen.ipv4", Test_ipv4.suite);
      ("flowgen.geoip", Test_geoip.suite);
      ("flowgen.netflow", Test_netflow.suite);
      ("flowgen.netflow_wire", Test_netflow_wire.suite);
      ("flowgen.sampling", Test_sampling.suite);
      ("flowgen.dedup", Test_dedup.suite);
      ("flowgen.demand", Test_demand.suite);
      ("flowgen.workload", Test_workload.suite);
      ("routing.community", Test_community.suite);
      ("routing.rib", Test_rib.suite);
      ("routing.accounting", Test_accounting.suite);
      ("routing.billing", Test_billing.suite);
      ("routing.policy", Test_policy.suite);
      ("routing.session", Test_session.suite);
      ("tiered.flow", Test_flow.suite);
      ("tiered.cost_model", Test_cost_model.suite);
      ("tiered.ced", Test_ced.suite);
      ("tiered.logit", Test_logit.suite);
      ("tiered.lin", Test_lin.suite);
      ("tiered.market", Test_market.suite);
      ("tiered.bundle", Test_bundle.suite);
      ("tiered.pricing", Test_pricing.suite);
      ("tiered.strategy", Test_strategy.suite);
      ("tiered.capture", Test_capture.suite);
      ("tiered.dataset", Test_dataset.suite);
      ("tiered.sensitivity", Test_sensitivity.suite);
      ("tiered.report", Test_report.suite);
      ("tiered.experiment", Test_experiment.suite);
      ("engine", Test_engine.suite);
      ("engine.transport", Test_transport.suite);
      ("engine.remote", Test_remote.suite);
      ("engine.manifest", Test_manifest.suite);
      ("golden", Test_golden.suite);
      ("flowgen.loading", Test_loading.suite);
      ("flowgen.trace", Test_trace.suite);
      ("flowgen.tomogravity", Test_tomogravity.suite);
      ("tiered.welfare", Test_welfare.suite);
      ("tiered.dynamics", Test_dynamics.suite);
      ("tiered.competition", Test_competition.suite);
      ("tiered.commit", Test_commit.suite);
      ("tiered.peak", Test_peak.suite);
      ("tiered.tier_count", Test_tier_count.suite);
      ("tiered.estimate", Test_estimate.suite);
      ("cross-module properties", Test_properties.suite);
      ("edge cases", Test_edge_cases.suite);
      ("integration", Test_integration.suite);
      ("serve", Test_serve.suite);
      ("analysis.lint", Test_lint.suite);
      ("analysis.typed", Test_typed_lint.suite);
    ]
