open Flowgen

let small_params =
  {
    Workload.n_flows = 120;
    aggregate_gbps = 5.;
    locality_scale = 50.;
    locality_spread = 1.0;
    demand_cv = 1.0;
    demand_distance_exponent = 1.0;
    local_tail_miles = 30.;
    on_net_fraction = 0.5;
    distance_mode = `Path;
    seed = 77;
  }

let topo = lazy (Netsim.Presets.eu_isp ())

let test_flow_count_and_aggregate () =
  let w = Workload.generate (Lazy.force topo) small_params in
  let s = Workload.stats w in
  Alcotest.(check int) "flow count" 120 s.Workload.flow_count;
  Alcotest.(check (float 1e-6)) "aggregate exact" 5. s.Workload.aggregate_gbps

let test_deterministic () =
  let w1 = Workload.generate (Lazy.force topo) small_params in
  let w2 = Workload.generate (Lazy.force topo) small_params in
  let key w = List.map (fun f -> (f.Workload.mbps, f.Workload.distance_miles)) w.Workload.flows in
  Alcotest.(check bool) "same flows" true (key w1 = key w2)

let test_seed_changes_output () =
  let w1 = Workload.generate (Lazy.force topo) small_params in
  let w2 = Workload.generate (Lazy.force topo) { small_params with seed = 78 } in
  let key w = List.map (fun f -> f.Workload.mbps) w.Workload.flows in
  Alcotest.(check bool) "different flows" false (key w1 = key w2)

let test_positive_fields () =
  let w = Workload.generate (Lazy.force topo) small_params in
  List.iter
    (fun f ->
      if f.Workload.mbps <= 0. then Alcotest.fail "non-positive demand";
      if f.Workload.distance_miles < 0. then Alcotest.fail "negative distance")
    w.Workload.flows

let test_addresses_resolve () =
  let w = Workload.generate (Lazy.force topo) small_params in
  List.iter
    (fun f ->
      match Geoip.lookup w.Workload.geoip f.Workload.dst_addr with
      | Some city ->
          Alcotest.(check string) "dst city" f.Workload.dst_city.Netsim.Cities.name
            city.Netsim.Cities.name
      | None -> Alcotest.fail "destination address not in geoip")
    w.Workload.flows

let test_locality_consistent () =
  (* Path mode uses the paper's distance thresholds... *)
  let w = Workload.generate (Lazy.force topo) small_params in
  List.iter
    (fun f ->
      let expected =
        Geoip.classify_distance ~metro_miles:10. ~national_miles:100.
          f.Workload.distance_miles
      in
      if f.Workload.locality <> expected then Alcotest.fail "locality mismatch")
    w.Workload.flows;
  (* ...and geo mode classifies by city/country. *)
  let wg = Workload.generate (Lazy.force topo) { small_params with distance_mode = `Geo } in
  List.iter
    (fun f ->
      let expected =
        if Netsim.Cities.same_city f.Workload.entry.Netsim.Node.city f.Workload.dst_city
        then Geoip.Metro
        else if
          Netsim.Cities.same_country f.Workload.entry.Netsim.Node.city f.Workload.dst_city
        then Geoip.National
        else Geoip.International
      in
      if f.Workload.locality <> expected then Alcotest.fail "geo locality mismatch")
    wg.Workload.flows

let test_locality_bias () =
  (* A tighter locality band must lower the demand-weighted distance. *)
  let near =
    Workload.generate (Lazy.force topo)
      { small_params with locality_scale = 5.; local_tail_miles = 5. }
  in
  let far =
    Workload.generate (Lazy.force topo)
      { small_params with locality_scale = 500.; local_tail_miles = 5. }
  in
  let d w = (Workload.stats w).Workload.w_avg_distance_miles in
  Alcotest.(check bool) "locality pulls traffic close" true (d near < d far)

let test_ground_truth_mapping () =
  let w = Workload.generate (Lazy.force topo) small_params in
  let gts = Workload.to_ground_truth w in
  Alcotest.(check int) "one gt per flow" (List.length w.Workload.flows) (List.length gts);
  List.iter2
    (fun f gt ->
      Alcotest.(check (float 0.)) "rate" f.Workload.mbps gt.Netflow.gt_mbps;
      Alcotest.(check bool) "observers" true (gt.Netflow.gt_routers <> []))
    w.Workload.flows gts

let test_validation () =
  let bad field params =
    match Workload.generate (Lazy.force topo) params with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted bad %s" field
  in
  bad "n_flows" { small_params with Workload.n_flows = 0 };
  bad "aggregate" { small_params with Workload.aggregate_gbps = 0. };
  bad "scale" { small_params with Workload.locality_scale = 0. };
  bad "spread" { small_params with Workload.locality_spread = 0. };
  bad "cv" { small_params with Workload.demand_cv = -1. };
  bad "exponent" { small_params with Workload.demand_distance_exponent = -0.5 };
  bad "on_net" { small_params with Workload.on_net_fraction = 1.5 }

let close ~tol a b = abs_float (a -. b) /. b <= tol

let test_table1_calibration () =
  (* The headline substitution: presets must land near the paper's
     Table 1 statistics. *)
  List.iter
    (fun name ->
      let target = Workload.table1_targets name in
      let s = Workload.stats (Workload.preset name) in
      if not (close ~tol:0.12 s.Workload.w_avg_distance_miles target.Workload.t_w_avg_distance)
      then
        Alcotest.failf "%s w-avg distance %f vs %f" name s.Workload.w_avg_distance_miles
          target.Workload.t_w_avg_distance;
      if not (close ~tol:0.12 s.Workload.cv_distance target.Workload.t_cv_distance) then
        Alcotest.failf "%s cv distance %f vs %f" name s.Workload.cv_distance
          target.Workload.t_cv_distance;
      if not (close ~tol:0.01 s.Workload.aggregate_gbps target.Workload.t_aggregate_gbps)
      then Alcotest.failf "%s aggregate" name;
      if not (close ~tol:0.12 s.Workload.cv_demand target.Workload.t_cv_demand) then
        Alcotest.failf "%s cv demand %f vs %f" name s.Workload.cv_demand
          target.Workload.t_cv_demand)
    [ "eu_isp"; "cdn"; "internet2" ]

let test_calibrate_reduces_loss () =
  (* A short Nelder-Mead run from a deliberately bad start must move the
     generated statistics toward the target. *)
  let topo = Lazy.force topo in
  let target =
    { Workload.t_w_avg_distance = 120.; t_cv_distance = 0.8; t_aggregate_gbps = 5.;
      t_cv_demand = 1.2 }
  in
  let bad_start = { small_params with Workload.locality_scale = 2000.; demand_cv = 0.1 } in
  let loss p =
    let s = Workload.stats (Workload.generate topo p) in
    let rel a b = (a -. b) /. b in
    (rel s.Workload.w_avg_distance_miles target.Workload.t_w_avg_distance ** 2.)
    +. (rel s.Workload.cv_distance target.Workload.t_cv_distance ** 2.)
    +. (rel s.Workload.cv_demand target.Workload.t_cv_demand ** 2.)
  in
  let calibrated = Workload.calibrate ~max_iter:120 topo bad_start target in
  Alcotest.(check bool) "loss reduced" true
    (loss calibrated < loss { bad_start with Workload.aggregate_gbps = 5. })

let test_distance_modes_differ () =
  let path = Workload.generate (Lazy.force topo) small_params in
  let geo =
    Workload.generate (Lazy.force topo) { small_params with distance_mode = `Geo }
  in
  (* Path distances are at least geo distances on the same pairs; the
     workloads differ. *)
  let d w = (Workload.stats w).Workload.w_avg_distance_miles in
  Alcotest.(check bool) "modes differ" true (d path <> d geo)

let test_unknown_preset () =
  Alcotest.check_raises "unknown"
    (Invalid_argument "Workload.preset_params: unknown network nope") (fun () ->
      ignore (Workload.preset_params "nope"))

let test_scale_suffix () =
  (* name@N overrides n_flows over the base calibration; targets and
     generation both resolve through the base network. *)
  let p = Workload.preset_params "eu_isp@1234" in
  let base = Workload.preset_params "eu_isp" in
  Alcotest.(check int) "n_flows overridden" 1234 p.Workload.n_flows;
  Alcotest.(check int) "same seed" base.Workload.seed p.Workload.seed;
  Alcotest.(check (float 0.))
    "targets resolve to the base row"
    (Workload.table1_targets "eu_isp").Workload.t_aggregate_gbps
    (Workload.table1_targets "eu_isp@1234").Workload.t_aggregate_gbps;
  let w = Workload.preset "eu_isp@1234" in
  Alcotest.(check int) "generated at scale" 1234 (List.length w.Workload.flows);
  Alcotest.check_raises "malformed suffix"
    (Invalid_argument
       "Workload.preset: malformed scale suffix in eu_isp@x (want name@N \
        with N >= 1)") (fun () -> ignore (Workload.preset_params "eu_isp@x"));
  Alcotest.check_raises "zero scale"
    (Invalid_argument
       "Workload.preset: malformed scale suffix in eu_isp@0 (want name@N \
        with N >= 1)") (fun () -> ignore (Workload.preset_params "eu_isp@0"))

let test_scale_suffix_strict () =
  (* The suffix must be plain decimal: [int_of_string]'s extensions
     (hex/octal/binary prefixes, underscores, signs) are configuration
     typos, not scales — "eu_isp@0x10" silently meaning 16 flows would
     be a debugging session. *)
  let reject suffix =
    Alcotest.check_raises ("reject " ^ suffix)
      (Invalid_argument
         (Printf.sprintf
            "Workload.preset: malformed scale suffix in eu_isp@%s (want \
             name@N with N >= 1)"
            suffix))
      (fun () -> ignore (Workload.preset_params ("eu_isp@" ^ suffix)))
  in
  List.iter reject [ "0x10"; "0b11"; "0o17"; "1_000"; "+5"; "-3"; ""; "12 "; "3.5" ];
  (* Leading zeros are still decimal. *)
  let p = Workload.preset_params "eu_isp@007" in
  Alcotest.(check int) "leading zeros ok" 7 p.Workload.n_flows

let suite =
  [
    Alcotest.test_case "flow count and aggregate" `Quick test_flow_count_and_aggregate;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "seed changes output" `Quick test_seed_changes_output;
    Alcotest.test_case "positive fields" `Quick test_positive_fields;
    Alcotest.test_case "addresses resolve in geoip" `Quick test_addresses_resolve;
    Alcotest.test_case "locality labels consistent" `Quick test_locality_consistent;
    Alcotest.test_case "locality bias" `Quick test_locality_bias;
    Alcotest.test_case "ground-truth mapping" `Quick test_ground_truth_mapping;
    Alcotest.test_case "parameter validation" `Quick test_validation;
    Alcotest.test_case "Table 1 calibration" `Slow test_table1_calibration;
    Alcotest.test_case "calibrate reduces loss" `Slow test_calibrate_reduces_loss;
    Alcotest.test_case "distance modes differ" `Quick test_distance_modes_differ;
    Alcotest.test_case "unknown preset" `Quick test_unknown_preset;
    Alcotest.test_case "scale suffix name@N" `Quick test_scale_suffix;
    Alcotest.test_case "scale suffix strict decimal" `Quick test_scale_suffix_strict;
  ]
