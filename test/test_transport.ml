(* Engine.Transport: the shared worker-transport scheduler, driven
   through fake endpoints so every protocol failure mode is exercised
   deterministically and in-process.

   The fuzz tests mirror test_netflow_wire's truncation sweep: a
   worker stream that dies mid-frame, or that carries garbage instead
   of frames, must never raise out of the scheduler — it reads as that
   worker crashing, and with retries exhausted the task surfaces as
   [Error (Worker_lost _)] in the result array. *)

(* A fake endpoint is a pair of pipes. The parent writes down-frames
   into [down_w] (we keep [down_r] open so dispatch writes never hit
   EPIPE — a worker that stopped reading is a different failure mode
   than one that wrote garbage); the "worker" side is whatever bytes
   the test pre-loads into the up pipe before closing its write end. *)
type fake = {
  f_ep : Engine.Transport.endpoint;
  f_down_r : Unix.file_descr;
}

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let fake_endpoint ~up_bytes =
  let down_r, down_w = Unix.pipe ~cloexec:true () in
  let up_r, up_w = Unix.pipe ~cloexec:true () in
  let n = String.length up_bytes in
  if n > 0 then begin
    let written = Unix.write_substring up_w up_bytes 0 n in
    if written <> n then failwith "fake endpoint: short preload write"
  end;
  (* EOF after the preloaded bytes: the stream is dead. *)
  Unix.close up_w;
  {
    f_ep =
      {
        Engine.Transport.ep_send = down_w;
        ep_recv = up_r;
        ep_kill = (fun () -> ());
        ep_close =
          (fun () ->
            close_noerr down_w;
            close_noerr up_r);
      };
    f_down_r = down_r;
  }

(* Run one 1-task map over endpoints that each speak [up_bytes], with
   [spares] fresh ones supplied through respawn, and return the single
   result. The task itself must never run locally (the scheduler only
   drains locally once every endpoint is gone AND the task was never
   charged a crash past its retry budget), so it raises if called. *)
let map_against ?timeout_s ~retries ~spares up_bytes =
  let fakes = ref [ fake_endpoint ~up_bytes ] in
  let spares = ref (List.init spares (fun _ -> ())) in
  let respawn _slot =
    match !spares with
    | [] -> None
    | () :: rest ->
        spares := rest;
        let f = fake_endpoint ~up_bytes in
        fakes := f :: !fakes;
        Some f.f_ep
  in
  let sched =
    Engine.Transport.make_sched ~retries ?timeout_s ~steal_after:30. ~respawn
      [| Some (List.hd !fakes).f_ep |]
  in
  let finally () =
    Engine.Transport.shutdown sched;
    List.iter (fun f -> close_noerr f.f_down_r) !fakes
  in
  Fun.protect ~finally @@ fun () ->
  let out =
    Engine.Transport.map sched
      (fun _ -> Alcotest.fail "task ran locally despite a charged crash")
      [| 0 |]
  in
  Alcotest.(check int) "one result" 1 (Array.length out);
  out.(0)

let check_worker_lost ~attempts what result =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected Worker_lost, got Ok" what
  | Error (Engine.Transport.Worker_lost { attempts = a; _ }, _) ->
      Alcotest.(check int) (what ^ ": attempts") attempts a
  | Error (exn, _) ->
      Alcotest.failf "%s: expected Worker_lost, got %s" what
        (Printexc.to_string exn)

(* One well-formed up-frame for task 0, as a worker would emit it —
   the truncation sweep cuts it at every interesting length. *)
let valid_result_frame ~seq =
  let payload =
    Marshal.to_string
      (Engine.Transport.Result (seq, Ok (Obj.repr 42)))
      []
  in
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.to_string b

(* (a) Truncation fuzz: a stream cut anywhere inside a valid frame —
   inside the length header, at the header boundary, mid-payload, one
   byte short — never raises; the task dies as Worker_lost. *)
let test_truncated_frames_surface_as_worker_lost () =
  let frame = valid_result_frame ~seq:0 in
  let n = String.length frame in
  let cuts = [ 0; 1; 2; 3; 4; 5; 8; n / 2; n - 2; n - 1 ] in
  List.iter
    (fun cut ->
      let cut = min cut (n - 1) in
      let r =
        map_against ~retries:0 ~spares:0 (String.sub frame 0 cut)
      in
      check_worker_lost ~attempts:1
        (Printf.sprintf "cut at %d/%d" cut n)
        r)
    cuts

(* (b) Garbage streams: arbitrary bytes, an over-limit length header,
   a negative length header, and a well-framed payload that is not a
   Marshal value at all. All are worker crashes, never exceptions. *)
let test_garbage_frames_surface_as_worker_lost () =
  let huge = Bytes.create 8 in
  Bytes.set_int32_be huge 0 0x7fff_ffffl;
  let negative = Bytes.create 8 in
  Bytes.set_int32_be negative 0 (-1l);
  let framed_garbage =
    let b = Bytes.create 9 in
    Bytes.set_int32_be b 0 5l;
    Bytes.blit_string "hello" 0 b 4 5;
    Bytes.to_string b
  in
  List.iter
    (fun (what, bytes) ->
      check_worker_lost ~attempts:1 what
        (map_against ~retries:0 ~spares:0 bytes))
    [
      ("random bytes", "\xff\xfe\x00\x41 not a frame \x00\x01");
      ("huge length header", Bytes.to_string huge);
      ("negative length header", Bytes.to_string negative);
      ("well-framed non-Marshal payload", framed_garbage);
    ]

(* (c) A syntactically valid Result frame for a task the worker was
   never given is a protocol violation — same containment. *)
let test_wrong_seq_result_is_a_crash () =
  check_worker_lost ~attempts:1 "wrong-seq result"
    (map_against ~retries:0 ~spares:0 (valid_result_frame ~seq:99))

(* (d) Retry accounting across respawns: retries=1 means the task is
   charged two crashed executions (the respawned endpoint speaks the
   same garbage) before Worker_lost reports attempts=2. *)
let test_retries_span_respawned_workers () =
  check_worker_lost ~attempts:2 "two garbage workers"
    (map_against ~retries:1 ~spares:3 "definitely not a frame")

(* (e) Handshake resync: init-time noise ahead of the magic is
   discarded byte-by-byte; a peer that never produces the magic fails
   the deadline instead of hanging. *)
let test_handshake_resync_and_deadline () =
  let r, w = Unix.pipe ~cloexec:true () in
  let noise = "stray stdout chatter \001\253 almost-magic \002" in
  let nw = Unix.write_substring w noise 0 (String.length noise) in
  Alcotest.(check int) "noise preloaded" (String.length noise) nw;
  let m = Engine.Transport.magic in
  let mw = Unix.write_substring w m 0 (String.length m) in
  Alcotest.(check int) "magic preloaded" (String.length m) mw;
  Engine.Transport.write_frame w "ready";
  Engine.Transport.handshake ~deadline_s:5.0 r;
  Unix.close r;
  Unix.close w;
  (* Deadline: a silent peer. *)
  let r, w = Unix.pipe ~cloexec:true () in
  (match Engine.Transport.handshake ~deadline_s:0.2 r with
  | () -> Alcotest.fail "handshake succeeded against a silent peer"
  | exception (Failure _ | End_of_file) -> ());
  Unix.close r;
  Unix.close w

(* (f) Frame IO round-trip, including the empty frame and one bigger
   than a pipe buffer. A regular file stands in for the socket — a
   single-threaded test writing 70 kB into its own unread pipe would
   deadlock on the pipe buffer, and forking a writer child is off the
   table once earlier suites have spawned domains. *)
let test_frame_roundtrip () =
  let frames = [ ""; "x"; String.make 70_000 'q' ] in
  let path = Filename.temp_file "tiered-frames" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let w = Unix.openfile path [ Unix.O_WRONLY ] 0o600 in
      List.iter (fun s -> Engine.Transport.write_frame w s) frames;
      Unix.close w;
      let r = Unix.openfile path [ Unix.O_RDONLY ] 0o600 in
      Fun.protect
        ~finally:(fun () -> Unix.close r)
        (fun () ->
          List.iter
            (fun s ->
              Alcotest.(check string)
                (Printf.sprintf "frame of %d bytes" (String.length s))
                s
                (Engine.Transport.read_frame r))
            frames;
          match Engine.Transport.read_frame r with
          | _ -> Alcotest.fail "read_frame past EOF returned"
          | exception End_of_file -> ()))

(* (g) The shared-secret preamble: a peer presenting the wrong token —
   or a hostile length header in place of one — is rejected before any
   frame is unmarshalled (task frames carry closures, so this gate is
   what stands between an open port and code execution); the right
   token proceeds to the magic/ready handshake, which carries the
   token back so the parent authenticates the worker too. *)
let test_auth_preamble () =
  let serve ~preload ~token =
    let in_r, in_w = Unix.pipe ~cloexec:true () in
    let out_r, out_w = Unix.pipe ~cloexec:true () in
    preload in_w;
    Unix.close in_w;
    let result =
      match Engine.Transport.serve_worker ~in_fd:in_r ~out_fd:out_w ~token () with
      | () -> Ok ()
      | exception exn -> Error exn
    in
    Unix.close in_r;
    Unix.close out_w;
    (result, out_r)
  in
  (* Wrong token: rejected, nothing written back. *)
  let result, out_r =
    serve
      ~preload:(fun fd -> Engine.Transport.write_auth fd ~token:"wrong")
      ~token:"s3cret"
  in
  (match result with
  | Ok _ -> Alcotest.fail "serve_worker accepted a wrong token"
  | Error Engine.Transport.Auth_failure -> ()
  | Error exn ->
      Alcotest.failf "expected Auth_failure, got %s" (Printexc.to_string exn));
  Unix.close out_r;
  (* A huge length header where the token frame should be: same
     rejection, and crucially no giant allocation or unmarshalling. *)
  let result, out_r =
    serve
      ~preload:(fun fd ->
        let hdr = Bytes.create 8 in
        Bytes.set_int32_be hdr 0 0x7fff_ffffl;
        let n = Unix.write fd hdr 0 8 in
        Alcotest.(check int) "hostile header preloaded" 8 n)
      ~token:"s3cret"
  in
  (match result with
  | Ok _ -> Alcotest.fail "serve_worker accepted a hostile auth header"
  | Error Engine.Transport.Auth_failure -> ()
  | Error exn ->
      Alcotest.failf "expected Auth_failure, got %s" (Printexc.to_string exn));
  Unix.close out_r;
  (* Right token: the worker serves (EOF after config ends the loop)
     and its ready frame authenticates back under the same token. *)
  let result, out_r =
    serve
      ~preload:(fun fd ->
        Engine.Transport.write_auth fd ~token:"s3cret";
        Engine.Transport.write_config fd)
      ~token:"s3cret"
  in
  (match result with
  | Ok _ -> ()
  | Error exn ->
      Alcotest.failf "right token rejected: %s" (Printexc.to_string exn));
  Engine.Transport.handshake ~deadline_s:5.0 ~token:"s3cret" out_r;
  Unix.close out_r;
  (* And a parent expecting a different token rejects that worker. *)
  let result, out_r =
    serve
      ~preload:(fun fd ->
        Engine.Transport.write_auth fd ~token:"s3cret";
        Engine.Transport.write_config fd)
      ~token:"s3cret"
  in
  (match result with
  | Ok _ -> ()
  | Error exn ->
      Alcotest.failf "right token rejected: %s" (Printexc.to_string exn));
  (match Engine.Transport.handshake ~deadline_s:5.0 ~token:"other" out_r with
  | () -> Alcotest.fail "handshake accepted a worker holding another token"
  | exception (Failure _ | End_of_file) -> ());
  Unix.close out_r

(* (h) The parent-side store: in-memory fallback round-trips, and with
   a disk tier configured it is backed by the content-addressed
   store — a payload published under one cache dedups into the same
   object another cache's digest lookup finds. *)
let test_store_roundtrip () =
  let store = Engine.Transport.Store.create () in
  Engine.Transport.Store.put store ~cache:"c" ~key_digest:"k1" ~payload:"abc";
  Alcotest.(check (option string))
    "in-memory store round-trip" (Some "abc")
    (Engine.Transport.Store.get store ~cache:"c" ~key_digest:"k1");
  Alcotest.(check (option string))
    "unknown digest misses" None
    (Engine.Transport.Store.get store ~cache:"c" ~key_digest:"k2")

let suite =
  [
    Alcotest.test_case "truncated frames surface as Worker_lost" `Quick
      test_truncated_frames_surface_as_worker_lost;
    Alcotest.test_case "garbage frames surface as Worker_lost" `Quick
      test_garbage_frames_surface_as_worker_lost;
    Alcotest.test_case "wrong-sequence result is a crash" `Quick
      test_wrong_seq_result_is_a_crash;
    Alcotest.test_case "retry accounting spans respawned workers" `Quick
      test_retries_span_respawned_workers;
    Alcotest.test_case "handshake resyncs through noise and enforces the \
                        deadline"
      `Quick test_handshake_resync_and_deadline;
    Alcotest.test_case "frame IO round-trips" `Quick test_frame_roundtrip;
    Alcotest.test_case "auth preamble gates the protocol" `Quick
      test_auth_preamble;
    Alcotest.test_case "artifact store round-trips" `Quick test_store_roundtrip;
  ]
