(* Engine.Manifest: deterministic grid files with appended completion
   records — the resumable-sweep bookkeeping. *)

let temp_manifest () =
  let path = Filename.temp_file "tiered-manifest" ".manifest" in
  Sys.remove path;
  path

let with_manifest_path f =
  let path = temp_manifest () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let digest s = Digest.to_hex (Digest.string s)

let grid n =
  List.init n (fun i ->
      {
        Engine.Manifest.index = i;
        name = Printf.sprintf "alpha=%d.5" i;
        input_digest = digest (Printf.sprintf "cell-%d" i);
      })

(* (a) Create, record, reload: the reloaded manifest sees the same
   cells and the recorded artifacts; unrecorded cells stay open. *)
let test_roundtrip () =
  with_manifest_path @@ fun path ->
  let m = Engine.Manifest.load_or_create ~path (grid 4) in
  Alcotest.(check int) "fresh manifest has no completions" 0
    (Engine.Manifest.completed m);
  Engine.Manifest.record_done m ~index:2 ~artifact:(digest "artifact-2");
  Engine.Manifest.record_done m ~index:0 ~artifact:(digest "artifact-0");
  Engine.Manifest.close m;
  let m2 = Engine.Manifest.load_or_create ~path (grid 4) in
  Fun.protect ~finally:(fun () -> Engine.Manifest.close m2) @@ fun () ->
  Alcotest.(check int) "two completions survive reload" 2
    (Engine.Manifest.completed m2);
  Alcotest.(check (option string))
    "artifact digest round-trips"
    (Some (digest "artifact-2"))
    (Engine.Manifest.artifact m2 2);
  Alcotest.(check (option string))
    "unrecorded cell stays open" None
    (Engine.Manifest.artifact m2 1);
  Alcotest.(check int) "cells preserved" 4
    (Array.length (Engine.Manifest.cells m2))

(* (b) Idempotent re-recording: restoring the same artifact on every
   resume neither duplicates completions nor grows the file without
   bound. *)
let test_idempotent_record () =
  with_manifest_path @@ fun path ->
  let m = Engine.Manifest.load_or_create ~path (grid 2) in
  let a = digest "same-artifact" in
  Engine.Manifest.record_done m ~index:1 ~artifact:a;
  Engine.Manifest.close m;
  let size_once = (Unix.stat path).Unix.st_size in
  let m2 = Engine.Manifest.load_or_create ~path (grid 2) in
  Engine.Manifest.record_done m2 ~index:1 ~artifact:a;
  Engine.Manifest.record_done m2 ~index:1 ~artifact:a;
  Engine.Manifest.close m2;
  Alcotest.(check int) "re-recording the same digest appends nothing"
    size_once
    (Unix.stat path).Unix.st_size;
  let m3 = Engine.Manifest.load_or_create ~path (grid 2) in
  Fun.protect ~finally:(fun () -> Engine.Manifest.close m3) @@ fun () ->
  Alcotest.(check int) "still one completion" 1 (Engine.Manifest.completed m3)

(* (c) Grid binding: loading a manifest against a different grid —
   changed digest, changed size, renamed cell — fails loudly. *)
let test_grid_mismatch_fails () =
  with_manifest_path @@ fun path ->
  Engine.Manifest.close (Engine.Manifest.load_or_create ~path (grid 3));
  let check_fails what cells =
    match Engine.Manifest.load_or_create ~path cells with
    | m ->
        Engine.Manifest.close m;
        Alcotest.failf "%s: load succeeded against a different grid" what
    | exception Failure _ -> ()
  in
  check_fails "different size" (grid 4);
  check_fails "changed input digest"
    (List.map
       (fun (c : Engine.Manifest.cell) ->
         if c.index = 1 then { c with input_digest = digest "tampered" } else c)
       (grid 3));
  check_fails "renamed cell"
    (List.map
       (fun (c : Engine.Manifest.cell) ->
         if c.index = 0 then { c with name = "beta=0.5" } else c)
       (grid 3))

(* (d) Torn tail: a crash mid-append leaves a truncated done record;
   the loader drops it (the CAS re-probe recovers the cell) instead of
   refusing the whole manifest. *)
let test_torn_done_record_tolerated () =
  with_manifest_path @@ fun path ->
  let m = Engine.Manifest.load_or_create ~path (grid 3) in
  Engine.Manifest.record_done m ~index:0 ~artifact:(digest "a0");
  Engine.Manifest.record_done m ~index:1 ~artifact:(digest "a1");
  Engine.Manifest.close m;
  (* Simulate the crash: chop bytes off the final line. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - 7)));
  let m2 = Engine.Manifest.load_or_create ~path (grid 3) in
  Fun.protect ~finally:(fun () -> Engine.Manifest.close m2) @@ fun () ->
  Alcotest.(check int) "intact record survives, torn record dropped" 1
    (Engine.Manifest.completed m2);
  Alcotest.(check (option string))
    "torn cell reads as open" None
    (Engine.Manifest.artifact m2 1)

(* (d') A tear can also cut inside the keyword itself: a final line
   that is any proper prefix of "done " — including a bare "done" with
   no trailing space — is a torn append, not structural corruption. *)
let test_torn_done_keyword_tolerated () =
  List.iter
    (fun torn ->
      with_manifest_path @@ fun path ->
      let m = Engine.Manifest.load_or_create ~path (grid 2) in
      Engine.Manifest.record_done m ~index:0 ~artifact:(digest "a0");
      Engine.Manifest.close m;
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc torn;
      close_out oc;
      let m2 = Engine.Manifest.load_or_create ~path (grid 2) in
      Fun.protect ~finally:(fun () -> Engine.Manifest.close m2) @@ fun () ->
      Alcotest.(check int)
        (Printf.sprintf "trailing %S tolerated, intact record kept" torn)
        1
        (Engine.Manifest.completed m2))
    [ "done"; "don"; "d"; "done " ]

(* (e) Structural validation: out-of-order indices, names with spaces
   and non-hex digests are rejected at creation. *)
let test_cell_validation () =
  let check_fails what cells =
    with_manifest_path @@ fun path ->
    match Engine.Manifest.load_or_create ~path cells with
    | m ->
        Engine.Manifest.close m;
        Alcotest.failf "%s: accepted" what
    | exception Failure _ -> ()
  in
  check_fails "out-of-order indices"
    [
      { Engine.Manifest.index = 1; name = "a"; input_digest = digest "x" };
      { Engine.Manifest.index = 0; name = "b"; input_digest = digest "y" };
    ];
  check_fails "space in name"
    [ { Engine.Manifest.index = 0; name = "a b"; input_digest = digest "x" } ];
  check_fails "non-hex digest"
    [ { Engine.Manifest.index = 0; name = "a"; input_digest = "not-hex!" } ];
  check_fails "empty grid" []

(* (f) Determinism: writing the same grid twice produces byte-identical
   manifest files (the resume path depends on the grid digest being a
   pure function of the cells). *)
let test_deterministic_render () =
  with_manifest_path @@ fun path1 ->
  with_manifest_path @@ fun path2 ->
  Engine.Manifest.close (Engine.Manifest.load_or_create ~path:path1 (grid 5));
  Engine.Manifest.close (Engine.Manifest.load_or_create ~path:path2 (grid 5));
  let read p = In_channel.with_open_bin p In_channel.input_all in
  Alcotest.(check string) "same grid, same bytes" (read path1) (read path2)

let suite =
  [
    Alcotest.test_case "record/reload round-trip" `Quick test_roundtrip;
    Alcotest.test_case "re-recording is idempotent" `Quick
      test_idempotent_record;
    Alcotest.test_case "grid mismatch fails loudly" `Quick
      test_grid_mismatch_fails;
    Alcotest.test_case "torn trailing done record is tolerated" `Quick
      test_torn_done_record_tolerated;
    Alcotest.test_case "torn trailing done keyword is tolerated" `Quick
      test_torn_done_keyword_tolerated;
    Alcotest.test_case "cell validation" `Quick test_cell_validation;
    Alcotest.test_case "manifest files are deterministic" `Quick
      test_deterministic_render;
  ]
