open Tiered

(* The divide-and-conquer tier-DP kernel (DESIGN.md §11) must be
   cut-for-cut identical to the exact quadratic reference, ties
   included — the Optimal strategy, golden experiment grids, and the
   bench all lean on that equality. *)

let cuts_testable = Alcotest.(list int)

let check_same name (fast : Numerics.Segdp.result)
    (exact : Numerics.Segdp.result) =
  Alcotest.check cuts_testable (name ^ " cuts") exact.Numerics.Segdp.cuts
    fast.Numerics.Segdp.cuts;
  Alcotest.(check int)
    (name ^ " segments")
    exact.Numerics.Segdp.segments fast.Numerics.Segdp.segments;
  (* Identical cuts imply identical (not merely close) values: both
     solvers sum the same seg_value calls over the same segments. *)
  Alcotest.(check bool)
    (name ^ " value")
    true
    (Float.equal exact.Numerics.Segdp.value fast.Numerics.Segdp.value)

let test_validation () =
  List.iter
    (fun (n, b, msg) ->
      Alcotest.check_raises
        (Printf.sprintf "n=%d b=%d" n b)
        (Invalid_argument msg)
        (fun () ->
          ignore (Numerics.Segdp.solve ~n ~n_bundles:b (fun _ _ -> 0.))))
    [
      (0, 1, "Segdp: n must be positive");
      (-2, 3, "Segdp: n must be positive");
      (1, 0, "Segdp: n_bundles must be positive");
    ]

let test_single_flow () =
  let r = Numerics.Segdp.solve ~n:1 ~n_bundles:5 (fun _ _ -> 7.5) in
  Alcotest.check cuts_testable "no cuts" [] r.Numerics.Segdp.cuts;
  Alcotest.(check int) "one segment" 1 r.Numerics.Segdp.segments;
  Alcotest.(check (float 0.)) "value" 7.5 r.Numerics.Segdp.value

let test_single_bundle () =
  (* b = 1 admits only the trivial partition. *)
  let seg i j = float_of_int ((10 * i) + j) in
  let r = Numerics.Segdp.solve ~n:6 ~n_bundles:1 seg in
  Alcotest.check cuts_testable "no cuts" [] r.Numerics.Segdp.cuts;
  Alcotest.(check (float 0.)) "value" (seg 0 5) r.Numerics.Segdp.value

let test_additive_prefers_fewest_segments () =
  (* Purely additive seg_value: every partition scores the same total, so
     the strict-[>] tie-breaks must keep the single segment. *)
  let seg i j = float_of_int (j - i + 1) in
  let r = Numerics.Segdp.solve ~n:9 ~n_bundles:4 seg in
  Alcotest.check cuts_testable "ties keep one segment" []
    r.Numerics.Segdp.cuts;
  Alcotest.(check (float 0.)) "value" 9. r.Numerics.Segdp.value

let test_known_optimum () =
  (* Concave reward for splitting at position 3: seg_value pays a bonus
     for the exact segments [0..2] and [3..5]. *)
  let seg i j = if (i = 0 && j = 2) || (i = 3 && j = 5) then 10. else 1. in
  let r = Numerics.Segdp.solve ~n:6 ~n_bundles:2 seg in
  Alcotest.check cuts_testable "splits at 3" [ 3 ] r.Numerics.Segdp.cuts;
  Alcotest.(check (float 0.)) "value" 20. r.Numerics.Segdp.value;
  check_same "known optimum" r
    (Numerics.Segdp.solve_quadratic ~n:6 ~n_bundles:2 seg)

let test_forced_fallback () =
  (* Convex segment value: seg i j = (j - i)^2 violates the adjacent
     inverse-Monge condition everywhere (2 d^2 < (d-1)^2 + (d+1)^2), so
     the Monge spot-check must kick the layer off the D&C rung, and
     whichever later rung accepts it (SMAWK or the quadratic backstop)
     must still return the quadratic DP's exact cuts. The optimum here
     is a single huge segment, but intermediate layers are hostile. *)
  let seg i j = float_of_int ((j - i) * (j - i)) in
  let n = 40 and n_bundles = 5 in
  let fast = Numerics.Segdp.solve ~n ~n_bundles seg in
  let exact = Numerics.Segdp.solve_quadratic ~n ~n_bundles seg in
  Alcotest.(check bool)
    "spot-check tripped" true
    (fast.Numerics.Segdp.stats.Numerics.Segdp.fallback_layers
     + fast.Numerics.Segdp.stats.Numerics.Segdp.smawk_layers
    >= 1);
  check_same "fallback" fast exact

let test_fallback_disabled_sampling_still_exact_on_monge () =
  (* samples = 0 disables validation; on a genuinely inverse-Monge
     matrix the D&C answer must nonetheless match exactly. Concave
     f(len): seg i j = sqrt (j - i + 1) is submodular. *)
  let seg i j = sqrt (float_of_int (j - i + 1)) in
  let fast = Numerics.Segdp.solve ~samples:0 ~n:60 ~n_bundles:6 seg in
  let exact = Numerics.Segdp.solve_quadratic ~n:60 ~n_bundles:6 seg in
  Alcotest.(check int)
    "no fallback" 0
    fast.Numerics.Segdp.stats.Numerics.Segdp.fallback_layers;
  check_same "monge" fast exact

let test_dandc_cheaper_than_quadratic () =
  (* The point of the kernel: strictly fewer seg_value evaluations than
     the quadratic reference on a well-behaved instance big enough for
     the log factor to win. *)
  let seg i j = sqrt (float_of_int (j - i + 1)) in
  let fast = Numerics.Segdp.solve ~n:400 ~n_bundles:8 seg in
  let exact = Numerics.Segdp.solve_quadratic ~n:400 ~n_bundles:8 seg in
  check_same "big monge" fast exact;
  Alcotest.(check bool)
    "fewer evaluations" true
    (fast.Numerics.Segdp.stats.Numerics.Segdp.evaluations
    < exact.Numerics.Segdp.stats.Numerics.Segdp.evaluations / 4)

(* Random-market cut equality, per demand spec (the ISSUE's headline
   property): build the same (order, seg_value) the Optimal strategy
   uses and pin solve = solve_quadratic cut-for-cut. *)

let spec_gen =
  QCheck.(
    list_of_size Gen.(3 -- 50)
      (pair (float_range 1. 120.) (float_range 1. 2500.)))

let market_of ~demand flows =
  match demand with
  | `Ced -> Fixtures.ced_market ~flows ()
  | `Logit -> Fixtures.logit_market ~flows ()
  | `Linear ->
      Market.fit ~spec:(Market.Linear { epsilon = 1.8 }) ~alpha:1.1 ~p0:20.
        ~cost_model:(Cost_model.linear ~theta:0.2) flows

let all_bundle_counts = List.init 10 (fun i -> i + 1)

let prop_cuts_equal name demand =
  QCheck.Test.make
    ~name:(Printf.sprintf "solve = solve_quadratic cuts (%s)" name)
    ~count:25 spec_gen
    (fun spec ->
      let m = market_of ~demand (Fixtures.flows_of_spec spec) in
      let _order, seg_value, regions = Strategy.dp_inputs m in
      let n = Market.n_flows m in
      List.for_all
        (fun b ->
          let fast = Numerics.Segdp.solve ~regions ~n ~n_bundles:b seg_value in
          let exact =
            Numerics.Segdp.solve_quadratic ~n ~n_bundles:b seg_value
          in
          fast.Numerics.Segdp.cuts = exact.Numerics.Segdp.cuts
          && Float.equal fast.Numerics.Segdp.value
               exact.Numerics.Segdp.value)
        all_bundle_counts)

(* Hostile logit generator: valuation offsets and costs biased toward
   the clamp/underflow boundaries where the pre-ladder kernel used to
   trip — weight underflow near alpha*dv = -745, prefix-sum absorption
   near dv = -40, exp saturation near alpha*dc = 690 — mixed with
   benign draws so region boundaries land mid-array. Offsets hang off
   a base valuation of 800 so the top flows keep a real profit scale:
   the no-backstop guarantee is about *clamped* markets, not about
   surfaces that have collapsed below one ulp wholesale (there the
   rounded dp+seg candidates can flip argmaxes at noise scale, the
   probes rightly notice, and the backstop carrying the layer is the
   ladder working as designed — cut equality still holds and is
   asserted for every draw). *)
let hostile_logit_arb =
  let open QCheck in
  let voff =
    Gen.oneof
      [
        Gen.float_range (-800.) 0.;
        Gen.float_range (-700.) (-650.);
        Gen.float_range (-45.) (-35.);
        Gen.return 0.;
      ]
  in
  let cost =
    Gen.oneof
      [
        Gen.float_range 1. 1500.;
        Gen.float_range 600. 660.;
        Gen.float_range 1. 50.;
      ]
  in
  make
    ~print:Print.(list (pair float float))
    Gen.(list_size (5 -- 40) (pair voff cost))

let prop_hostile_logit_decomposed =
  QCheck.Test.make
    ~name:"hostile logit: cuts equal, decomposed => no backstop" ~count:50
    hostile_logit_arb
    (fun spec ->
      let n = List.length spec in
      let valuations =
        Array.of_list (List.map (fun (dv, _) -> 800. +. dv) spec)
      in
      let costs = Array.of_list (List.map (fun (_, c) -> c) spec) in
      let flows =
        Fixtures.flows_of_spec
          (List.mapi (fun i _ -> (10. +. float_of_int i, 100.)) spec)
      in
      let m =
        Market.of_parameters
          ~spec:(Market.Logit { s0 = 0.2 })
          ~alpha:1.1 ~p0:20. ~valuations ~costs flows
      in
      let _order, seg_value, regions = Strategy.dp_inputs m in
      List.for_all
        (fun b ->
          let fast = Numerics.Segdp.solve ~regions ~n ~n_bundles:b seg_value in
          let exact =
            Numerics.Segdp.solve_quadratic ~n ~n_bundles:b seg_value
          in
          fast.Numerics.Segdp.cuts = exact.Numerics.Segdp.cuts
          && Float.equal fast.Numerics.Segdp.value exact.Numerics.Segdp.value
          (* The whole point of the decomposition: once the clamped
             ranges are split out, no layer may pay the O(n^2) row. *)
          && (Array.length regions = 1
             || fast.Numerics.Segdp.stats.Numerics.Segdp.fallback_layers = 0))
        all_bundle_counts)

let prop_evals_monotone_in_n =
  (* Work must grow with the instance: the same spec replicated 8x has
     to cost strictly more seg_value evaluations at every bundle
     count. Guards against validation accidentally scaling with
     something other than n (or a rung silently re-running layers). *)
  QCheck.Test.make ~name:"evaluations monotone in n" ~count:15 spec_gen
    (fun spec ->
      let evals m b =
        let _order, seg_value, regions = Strategy.dp_inputs m in
        let n = Market.n_flows m in
        let r = Numerics.Segdp.solve ~regions ~n ~n_bundles:b seg_value in
        r.Numerics.Segdp.stats.Numerics.Segdp.evaluations
      in
      let small = market_of ~demand:`Ced (Fixtures.flows_of_spec spec) in
      let big_spec = List.concat (List.init 8 (fun _ -> spec)) in
      let big = market_of ~demand:`Ced (Fixtures.flows_of_spec big_spec) in
      List.for_all (fun b -> evals small b < evals big b) [ 2; 5; 10 ])

let prop_cuts_valid =
  (* Structural sanity on the returned partition itself. *)
  QCheck.Test.make ~name:"cuts ascending, in range, within budget"
    ~count:25 spec_gen
    (fun spec ->
      let m = Fixtures.ced_market ~flows:(Fixtures.flows_of_spec spec) () in
      let _order, seg_value, _regions = Strategy.dp_inputs m in
      let n = Market.n_flows m in
      List.for_all
        (fun b ->
          let r = Numerics.Segdp.solve ~n ~n_bundles:b seg_value in
          let cuts = r.Numerics.Segdp.cuts in
          let ascending =
            let rec go = function
              | a :: (c :: _ as rest) -> a < c && go rest
              | _ -> true
            in
            go cuts
          in
          ascending
          && List.for_all (fun c -> c >= 1 && c <= n - 1) cuts
          && r.Numerics.Segdp.segments = List.length cuts + 1
          && r.Numerics.Segdp.segments <= Stdlib.min b n)
        [ 1; 2; 4; 8 ])

(* --- Warm start (the streaming service's incremental solves) ------------ *)

(* Concave-of-additive segment values off a per-position weight array:
   inverse Monge, and mutating a position suffix perturbs exactly the
   segments that touch it — the shape of a re-tier's dirty window. *)
let seg_of_weights w =
  let n = Array.length w in
  let prefix = Array.make (n + 1) 0. in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. w.(i)
  done;
  fun lo hi -> sqrt (prefix.(hi + 1) -. prefix.(lo))

let base_weights n = Array.init n (fun i -> 1. +. (float_of_int (i mod 7) /. 3.))

let test_state_matches_solve () =
  let n = 80 and n_bundles = 6 in
  let seg = seg_of_weights (base_weights n) in
  let from_state, _ = Numerics.Segdp.solve_with_state ~n ~n_bundles seg in
  check_same "with_state" from_state (Numerics.Segdp.solve ~n ~n_bundles seg)

let test_warm_suffix_matches_cold () =
  let n = 80 and n_bundles = 6 and d = 55 in
  let w = base_weights n in
  let _, st = Numerics.Segdp.solve_with_state ~n ~n_bundles (seg_of_weights w) in
  for i = d to n - 1 do
    w.(i) <- w.(i) +. 2.5
  done;
  let seg = seg_of_weights w in
  let warm, how = Numerics.Segdp.solve_warm st ~dirty_from:d seg in
  Alcotest.(check bool) "warm path" true (how = `Warm);
  Alcotest.(check int)
    "no fallback" 0 warm.Numerics.Segdp.stats.Numerics.Segdp.fallback_layers;
  let cold = Numerics.Segdp.solve ~n ~n_bundles seg in
  check_same "warm = cold" warm cold;
  Alcotest.(check bool)
    "suffix recompute is cheaper" true
    (warm.Numerics.Segdp.stats.Numerics.Segdp.evaluations
    < cold.Numerics.Segdp.stats.Numerics.Segdp.evaluations)

let test_warm_dirty_zero_full_recompute () =
  let n = 60 and n_bundles = 5 in
  let w = base_weights n in
  let _, st = Numerics.Segdp.solve_with_state ~n ~n_bundles (seg_of_weights w) in
  Array.iteri (fun i v -> w.(i) <- v *. 1.7) (Array.copy w);
  let seg = seg_of_weights w in
  let warm, _ = Numerics.Segdp.solve_warm st ~dirty_from:0 seg in
  check_same "dirty 0" warm (Numerics.Segdp.solve ~n ~n_bundles seg)

let test_warm_unchanged_replay () =
  let n = 50 and n_bundles = 4 in
  let seg = seg_of_weights (base_weights n) in
  let first, st = Numerics.Segdp.solve_with_state ~n ~n_bundles seg in
  let replay, how = Numerics.Segdp.solve_warm st ~dirty_from:n seg in
  Alcotest.(check bool) "warm tag" true (how = `Warm);
  Alcotest.(check int)
    "zero evaluations" 0 replay.Numerics.Segdp.stats.Numerics.Segdp.evaluations;
  check_same "replay" replay first

let test_warm_force_fallback () =
  let n = 50 and n_bundles = 4 in
  let w = base_weights n in
  let _, st = Numerics.Segdp.solve_with_state ~n ~n_bundles (seg_of_weights w) in
  w.(30) <- w.(30) +. 9.;
  let seg = seg_of_weights w in
  let warm, how =
    Numerics.Segdp.solve_warm ~force_fallback:true st ~dirty_from:30 seg
  in
  Alcotest.(check bool) "took the cold path" true (how = `Cold);
  check_same "forced" warm (Numerics.Segdp.solve ~n ~n_bundles seg);
  (* The state is usable again after the drill. *)
  let again, how = Numerics.Segdp.solve_warm st ~dirty_from:n seg in
  Alcotest.(check bool) "replay after drill" true (how = `Warm);
  check_same "post-drill replay" again warm

let test_warm_genuine_divergence () =
  (* Hostile convex base (the same shape [test_forced_fallback] uses):
     the warm suffix recompute's spot-check must trip and the cold
     fallback must still match the exact quadratic DP. *)
  let n = 40 and n_bundles = 5 and d = 20 in
  let bump = Array.make n 0. in
  let seg_with bump lo hi =
    let extra = ref 0. in
    for x = lo to hi do
      extra := !extra +. bump.(x)
    done;
    float_of_int ((hi - lo) * (hi - lo)) +. !extra
  in
  let _, st =
    Numerics.Segdp.solve_with_state ~n ~n_bundles (seg_with bump)
  in
  for i = d to n - 1 do
    bump.(i) <- 3.
  done;
  let seg = seg_with bump in
  let warm, how = Numerics.Segdp.solve_warm st ~dirty_from:d seg in
  Alcotest.(check bool) "diverged to cold" true (how = `Cold);
  check_same "divergence" warm
    (Numerics.Segdp.solve_quadratic ~n ~n_bundles seg)

(* --- Structural warm starts (arrivals/departures change n) --------------- *)

let test_structural_tail_arrival () =
  (* Flows appended past the old end: the whole retained table is a
     clean prefix; only the new tail is computed. *)
  let n = 60 and n_bundles = 5 and n' = 72 in
  let w = base_weights n' in
  let _, st =
    Numerics.Segdp.solve_with_state ~n ~n_bundles
      (seg_of_weights (Array.sub w 0 n))
  in
  let seg = seg_of_weights w in
  let r, how = Numerics.Segdp.solve_structural st ~n:n' ~dirty_from:n seg in
  Alcotest.(check bool) "warm path" true (how = `Warm);
  let cold = Numerics.Segdp.solve ~n:n' ~n_bundles seg in
  check_same "tail arrival" r cold;
  Alcotest.(check bool) "cheaper than cold" true
    (r.Numerics.Segdp.stats.Numerics.Segdp.evaluations
    < cold.Numerics.Segdp.stats.Numerics.Segdp.evaluations)

let test_structural_middle_churn () =
  (* A departure in the middle, then an arrival: positions left of the
     change are retained, the suffix is recomputed, results match
     from-scratch at every step. *)
  let n = 60 and n_bundles = 5 and k = 25 in
  let w = base_weights n in
  let _, st = Numerics.Segdp.solve_with_state ~n ~n_bundles (seg_of_weights w) in
  (* Departure: drop position k. *)
  let w1 = Array.init (n - 1) (fun i -> if i < k then w.(i) else w.(i + 1)) in
  let seg1 = seg_of_weights w1 in
  let r1, how1 = Numerics.Segdp.solve_structural st ~n:(n - 1) ~dirty_from:k seg1 in
  Alcotest.(check bool) "departure warm" true (how1 = `Warm);
  check_same "departure" r1 (Numerics.Segdp.solve ~n:(n - 1) ~n_bundles seg1);
  (* Arrival: insert a new weight at position k on top of that. *)
  let w2 =
    Array.init n (fun i ->
        if i < k then w1.(i) else if i = k then 2.2 else w1.(i - 1))
  in
  let seg2 = seg_of_weights w2 in
  let r2, how2 = Numerics.Segdp.solve_structural st ~n ~dirty_from:k seg2 in
  Alcotest.(check bool) "arrival warm" true (how2 = `Warm);
  check_same "arrival" r2 (Numerics.Segdp.solve ~n ~n_bundles seg2);
  (* The state tracks the latest instance: an unchanged replay works. *)
  let r3, how3 = Numerics.Segdp.solve_warm st ~dirty_from:n seg2 in
  Alcotest.(check bool) "replay after churn" true (how3 = `Warm);
  check_same "replay" r3 r2

let test_structural_pure_truncation () =
  (* The surviving prefix is byte-identical (dirty_from = new n): the
     retained columns are refreshed without a single evaluation. *)
  let n = 80 and n_bundles = 6 and n' = 60 in
  let w = base_weights n in
  let _, st = Numerics.Segdp.solve_with_state ~n ~n_bundles (seg_of_weights w) in
  let seg = seg_of_weights (Array.sub w 0 n') in
  let r, how = Numerics.Segdp.solve_structural st ~n:n' ~dirty_from:n' seg in
  Alcotest.(check bool) "warm path" true (how = `Warm);
  Alcotest.(check int) "zero evaluations" 0
    r.Numerics.Segdp.stats.Numerics.Segdp.evaluations;
  check_same "truncation" r (Numerics.Segdp.solve ~n:n' ~n_bundles seg)

let test_structural_same_n_delegates () =
  (* n unchanged: solve_structural is solve_warm. *)
  let n = 40 and n_bundles = 4 in
  let w = base_weights n in
  let _, st = Numerics.Segdp.solve_with_state ~n ~n_bundles (seg_of_weights w) in
  w.(20) <- w.(20) +. 3.;
  let seg = seg_of_weights w in
  let r, how = Numerics.Segdp.solve_structural st ~n ~dirty_from:20 seg in
  Alcotest.(check bool) "warm" true (how = `Warm);
  check_same "same n" r (Numerics.Segdp.solve ~n ~n_bundles seg)

let test_structural_forced_fallback () =
  (* The drill works across a size change too, and the rebuilt state is
     warm-usable afterwards. *)
  let n = 50 and n_bundles = 4 and n' = 55 in
  let w = base_weights n' in
  let _, st =
    Numerics.Segdp.solve_with_state ~n ~n_bundles
      (seg_of_weights (Array.sub w 0 n))
  in
  let seg = seg_of_weights w in
  let r, how =
    Numerics.Segdp.solve_structural ~force_fallback:true st ~n:n' ~dirty_from:n
      seg
  in
  Alcotest.(check bool) "cold via drill" true (how = `Cold);
  check_same "forced" r (Numerics.Segdp.solve ~n:n' ~n_bundles seg);
  let again, how = Numerics.Segdp.solve_warm st ~dirty_from:n' seg in
  Alcotest.(check bool) "replay after drill" true (how = `Warm);
  check_same "post-drill replay" again r

let test_structural_divergence_falls_back () =
  (* Hostile convex base across a size change: the spot-check must trip
     and the cold rebuild must match the exact quadratic DP. *)
  let n = 40 and n_bundles = 5 and n' = 48 in
  let bump = Array.make n' 0. in
  let seg_with lim lo hi =
    let extra = ref 0. in
    for x = lo to Stdlib.min hi (lim - 1) do
      extra := !extra +. bump.(x)
    done;
    float_of_int ((hi - lo) * (hi - lo)) +. !extra
  in
  let _, st = Numerics.Segdp.solve_with_state ~n ~n_bundles (seg_with n) in
  for i = 20 to n' - 1 do
    bump.(i) <- 3.
  done;
  let seg = seg_with n' in
  let r, how = Numerics.Segdp.solve_structural st ~n:n' ~dirty_from:20 seg in
  Alcotest.(check bool) "diverged to cold" true (how = `Cold);
  check_same "structural divergence" r
    (Numerics.Segdp.solve_quadratic ~n:n' ~n_bundles seg)

let test_structural_validation () =
  let n = 10 in
  let seg = seg_of_weights (base_weights n) in
  let _, st = Numerics.Segdp.solve_with_state ~n ~n_bundles:3 seg in
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Segdp.solve_structural: n must be positive")
    (fun () -> ignore (Numerics.Segdp.solve_structural st ~n:0 ~dirty_from:0 seg));
  List.iter
    (fun (n', d) ->
      Alcotest.check_raises
        (Printf.sprintf "n=%d dirty_from=%d" n' d)
        (Invalid_argument
           "Segdp.solve_structural: dirty_from out of [0, min old_n n]")
        (fun () ->
          ignore (Numerics.Segdp.solve_structural st ~n:n' ~dirty_from:d seg)))
    [ (12, -1); (12, 11); (8, 9) ]

let prop_structural_churn =
  QCheck.Test.make ~count:40 ~name:"segdp structural: random churn = cold"
    QCheck.(
      pair (int_range 8 40)
        (list_of_size Gen.(int_range 1 4) (pair (int_range 0 1000) bool)))
    (fun (n0, edits) ->
      let n_bundles = 4 in
      let w = ref (Array.init n0 (fun i -> 1. +. (float_of_int ((i * 13) mod 17) /. 5.))) in
      let _, st =
        Numerics.Segdp.solve_with_state ~n:n0 ~n_bundles (seg_of_weights !w)
      in
      List.for_all
        (fun (pos_seed, insert) ->
          let n = Array.length !w in
          (* Keep at least two positions so deletions stay legal. *)
          let insert = insert || n <= 2 in
          let pos = pos_seed mod (if insert then n + 1 else n) in
          let w' =
            if insert then
              Array.init (n + 1) (fun i ->
                  if i < pos then !w.(i)
                  else if i = pos then 0.9 +. (float_of_int (pos_seed mod 7) /. 4.)
                  else !w.(i - 1))
            else
              Array.init (n - 1) (fun i ->
                  if i < pos then !w.(i) else !w.(i + 1))
          in
          w := w';
          let n' = Array.length w' in
          let seg = seg_of_weights w' in
          let r, _ =
            Numerics.Segdp.solve_structural st ~n:n' ~dirty_from:pos seg
          in
          let cold = Numerics.Segdp.solve ~n:n' ~n_bundles seg in
          r.Numerics.Segdp.cuts = cold.Numerics.Segdp.cuts
          && Float.equal r.Numerics.Segdp.value cold.Numerics.Segdp.value)
        edits)

let test_warm_validation () =
  let n = 10 in
  let seg = seg_of_weights (base_weights n) in
  let _, st = Numerics.Segdp.solve_with_state ~n ~n_bundles:3 seg in
  List.iter
    (fun d ->
      Alcotest.check_raises
        (Printf.sprintf "dirty_from=%d" d)
        (Invalid_argument "Segdp.solve_warm: dirty_from out of [0, n]")
        (fun () -> ignore (Numerics.Segdp.solve_warm st ~dirty_from:d seg)))
    [ -1; n + 1 ]

let suite =
  [
    Alcotest.test_case "argument validation" `Quick test_validation;
    Alcotest.test_case "single flow" `Quick test_single_flow;
    Alcotest.test_case "single bundle" `Quick test_single_bundle;
    Alcotest.test_case "additive ties keep fewest segments" `Quick
      test_additive_prefers_fewest_segments;
    Alcotest.test_case "known optimum" `Quick test_known_optimum;
    Alcotest.test_case "forced fallback (convex seg_value)" `Quick
      test_forced_fallback;
    Alcotest.test_case "monge exact without validation" `Quick
      test_fallback_disabled_sampling_still_exact_on_monge;
    Alcotest.test_case "d&c beats quadratic eval count" `Quick
      test_dandc_cheaper_than_quadratic;
    Alcotest.test_case "state solve matches solve" `Quick test_state_matches_solve;
    Alcotest.test_case "warm suffix matches cold" `Quick test_warm_suffix_matches_cold;
    Alcotest.test_case "warm dirty 0 = full recompute" `Quick
      test_warm_dirty_zero_full_recompute;
    Alcotest.test_case "warm unchanged replay" `Quick test_warm_unchanged_replay;
    Alcotest.test_case "warm forced fallback" `Quick test_warm_force_fallback;
    Alcotest.test_case "warm genuine divergence" `Quick test_warm_genuine_divergence;
    Alcotest.test_case "warm validation" `Quick test_warm_validation;
    Alcotest.test_case "structural tail arrival" `Quick test_structural_tail_arrival;
    Alcotest.test_case "structural middle churn" `Quick test_structural_middle_churn;
    Alcotest.test_case "structural pure truncation" `Quick
      test_structural_pure_truncation;
    Alcotest.test_case "structural same n delegates" `Quick
      test_structural_same_n_delegates;
    Alcotest.test_case "structural forced fallback" `Quick
      test_structural_forced_fallback;
    Alcotest.test_case "structural divergence falls back" `Quick
      test_structural_divergence_falls_back;
    Alcotest.test_case "structural validation" `Quick test_structural_validation;
    QCheck_alcotest.to_alcotest prop_structural_churn;
    QCheck_alcotest.to_alcotest (prop_cuts_equal "ced" `Ced);
    QCheck_alcotest.to_alcotest (prop_cuts_equal "logit" `Logit);
    QCheck_alcotest.to_alcotest (prop_cuts_equal "linear" `Linear);
    QCheck_alcotest.to_alcotest prop_hostile_logit_decomposed;
    QCheck_alcotest.to_alcotest prop_evals_monotone_in_n;
    QCheck_alcotest.to_alcotest prop_cuts_valid;
  ]
