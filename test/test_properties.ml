(* Cross-module property tests on randomly generated markets: the
   invariants every component combination must satisfy, regardless of the
   flow mix. *)
open Tiered

let market_gen =
  (* 3-12 flows with demands over three orders of magnitude and
     distances from metro to intercontinental. *)
  QCheck.Gen.(
    let flow = pair (float_range 0.5 500.) (float_range 1. 8000.) in
    list_size (3 -- 12) flow)

let arb_spec = QCheck.make ~print:QCheck.Print.(list (pair float float)) market_gen

let markets_of spec =
  let flows = Fixtures.flows_of_spec spec in
  [
    Market.fit ~spec:Market.Ced ~alpha:1.3 ~p0:20.
      ~cost_model:(Cost_model.linear ~theta:0.2) flows;
    Market.fit ~spec:(Market.Logit { s0 = 0.2 }) ~alpha:1.3 ~p0:20.
      ~cost_model:(Cost_model.linear ~theta:0.2) flows;
    Market.fit ~spec:(Market.Linear { epsilon = 1.8 }) ~alpha:1.3 ~p0:20.
      ~cost_model:(Cost_model.linear ~theta:0.2) flows;
  ]

let for_all_markets f spec = List.for_all f (markets_of spec)

let prop_capture_bounds =
  QCheck.Test.make ~name:"optimal capture lies in [0, 1]" ~count:60 arb_spec
    (for_all_markets (fun m ->
         let ctx = Capture.context m in
         List.for_all
           (fun b ->
             let c =
               Capture.value ctx
                 (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b))
                   .Pricing.profit
             in
             c >= -1e-9 && c <= 1. +. 1e-9)
           [ 1; 2; 3 ]))

let prop_profit_chain =
  QCheck.Test.make ~name:"blended <= optimal B2 <= optimal B3 <= max" ~count:60
    arb_spec
    (for_all_markets (fun m ->
         let profit b =
           (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b))
             .Pricing.profit
         in
         let blended = Pricing.original_profit m in
         let maximum = Pricing.max_profit m in
         let tol = 1e-9 *. (1. +. abs_float maximum) in
         blended <= profit 2 +. tol
         && profit 2 <= profit 3 +. tol
         && profit 3 <= maximum +. tol))

let prop_every_strategy_below_optimal =
  QCheck.Test.make ~name:"no heuristic beats optimal" ~count:40 arb_spec
    (for_all_markets (fun m ->
         let profit s =
           (Pricing.evaluate m (Strategy.apply s m ~n_bundles:3)).Pricing.profit
         in
         let best = profit Strategy.Optimal in
         let tol = 1e-9 *. (1. +. abs_float best) in
         List.for_all (fun s -> profit s <= best +. tol) Strategy.all))

let prop_welfare_identity =
  QCheck.Test.make ~name:"welfare identity on random markets" ~count:60 arb_spec
    (for_all_markets (fun m ->
         let a = Welfare.of_strategy m Strategy.Optimal ~n_bundles:2 in
         let tol = 1e-6 *. (1. +. abs_float a.Welfare.first_best_welfare) in
         abs_float (a.Welfare.welfare -. (a.Welfare.profit +. a.Welfare.consumer_surplus))
         <= tol
         && a.Welfare.efficiency <= 1. +. 1e-9))

let prop_blended_demand_recovered =
  QCheck.Test.make ~name:"blended pricing reproduces observed demand" ~count:60
    arb_spec
    (for_all_markets (fun m ->
         let o = Pricing.blended m in
         Array.for_all2
           (fun (f : Flow.t) q ->
             abs_float (q -. f.Flow.demand_mbps) <= 1e-6 *. (1. +. f.Flow.demand_mbps))
           m.Market.flows o.Pricing.flow_demands))

let prop_bundle_prices_between_flow_optima_ced =
  QCheck.Test.make ~name:"CED bundle prices within member optima" ~count:60 arb_spec
    (fun spec ->
      let m = List.hd (markets_of spec) in
      let bundles = Strategy.apply Strategy.Optimal m ~n_bundles:2 in
      let o = Pricing.evaluate m bundles in
      Array.for_all2
        (fun group price ->
          let optima =
            Array.map
              (fun i -> Ced.optimal_price ~alpha:m.Market.alpha ~c:m.Market.costs.(i))
              group
          in
          price >= Numerics.Stats.min optima -. 1e-6
          && price <= Numerics.Stats.max optima +. 1e-6)
        (bundles :> int array array)
        o.Pricing.bundle_prices)

let prop_cost_model_invariance =
  (* Scaling every distance by a constant leaves relative costs, hence
     capture, unchanged under the linear model with theta=0. *)
  QCheck.Test.make ~name:"capture invariant to distance rescaling" ~count:40
    QCheck.(pair arb_spec (float_range 0.5 20.))
    (fun (spec, scale) ->
      let scaled = List.map (fun (q, d) -> (q, d *. scale)) spec in
      let capture s =
        let m =
          Market.fit ~spec:Market.Ced ~alpha:1.3 ~p0:20.
            ~cost_model:(Cost_model.linear ~theta:0.)
            (Fixtures.flows_of_spec s)
        in
        Sensitivity.capture_at m Strategy.Optimal ~n_bundles:2
      in
      abs_float (capture spec -. capture scaled) <= 1e-6)

let prop_tier_count_net_profit_bounded =
  QCheck.Test.make ~name:"net profit <= gross profit" ~count:40 arb_spec
    (for_all_markets (fun m ->
         let o = Tier_count.overhead ~fixed:1. ~per_tier:2. ~per_flow:0.1 () in
         List.for_all
           (fun p -> p.Tier_count.net_profit <= p.Tier_count.gross_profit)
           (Tier_count.series m Strategy.Optimal o ~max_bundles:4)))

let prop_ced_capture_monotone =
  (* §4.2: under CED demand, adding tiers can only help the optimal
     partition — capture stays in [0,1] and is non-decreasing in the
     tier count. *)
  QCheck.Test.make ~name:"CED capture in [0,1] and monotone in tier count"
    ~count:40 arb_spec (fun spec ->
      let m = List.hd (markets_of spec) in
      let ctx = Capture.context m in
      let capture b =
        Capture.value ctx
          (Pricing.evaluate m (Strategy.apply Strategy.Optimal m ~n_bundles:b))
            .Pricing.profit
      in
      let cs = List.map capture [ 1; 2; 3; 4 ] in
      let rec monotone = function
        | a :: (b :: _ as tl) -> a <= b +. 1e-9 && monotone tl
        | _ -> true
      in
      List.for_all (fun c -> c >= -1e-9 && c <= 1. +. 1e-9) cs && monotone cs)

let prop_strategies_partition =
  (* Whatever the strategy and market, the bundles form a partition of
     the flow indices: non-empty, pairwise disjoint and covering. *)
  QCheck.Test.make ~name:"every strategy yields a partition of the flows"
    ~count:40 arb_spec
    (for_all_markets (fun m ->
         let n = Array.length m.Market.flows in
         List.for_all
           (fun s ->
             List.for_all
               (fun b ->
                 let b = min b n in
                 let groups =
                   (Strategy.apply s m ~n_bundles:b :> int array array)
                 in
                 Array.for_all (fun g -> Array.length g > 0) groups
                 &&
                 let all = Array.concat (Array.to_list groups) in
                 Array.sort compare all;
                 Array.length all = n
                 && Array.for_all2 (fun i j -> i = j) all (Array.init n Fun.id))
               [ 1; 2; 4 ])
           Strategy.all))

let arb_capture_grid =
  (* Random sub-grids of the fig8-class experiment shape: a non-empty
     subset of networks and bundle counts, a demand spec, and evaluation
     parameters. *)
  let gen rand =
    let open QCheck.Gen in
    let nonempty_sub xs =
      let chosen = List.filter (fun _ -> bool rand) xs in
      if chosen = [] then [ List.nth xs (int_bound (List.length xs - 1) rand) ]
      else chosen
    in
    let networks = nonempty_sub Experiment.Defaults.networks in
    let bundle_counts = nonempty_sub Experiment.Defaults.bundle_counts in
    let spec = if bool rand then Market.Ced else Market.Logit { s0 = 0.2 } in
    let alpha = float_range 1.1 2.0 rand in
    let p0 = float_range 10. 30. rand in
    (networks, bundle_counts, spec, alpha, p0)
  in
  QCheck.make
    ~print:(fun (ns, bs, spec, alpha, p0) ->
      Printf.sprintf "networks=[%s] bundles=[%s] spec=%s alpha=%.3f p0=%.3f"
        (String.concat ";" ns)
        (String.concat ";" (List.map string_of_int bs))
        (match spec with
        | Market.Ced -> "ced"
        | Market.Logit { s0 } -> Printf.sprintf "logit(s0=%.2f)" s0
        | Market.Linear { epsilon } -> Printf.sprintf "linear(eps=%.2f)" epsilon)
        alpha p0)
    gen

let prop_cell_decomposition =
  (* The tentpole invariant: for any grid shape, assembling the cell
     outputs reproduces the direct run byte-for-byte (structural
     equality of the report lists implies identical rendering). *)
  QCheck.Test.make ~name:"cell decomposition: assemble (map compute) = run"
    ~count:6 arb_capture_grid (fun (networks, bundle_counts, spec, alpha, p0) ->
      let e =
        Experiment.capture_experiment ~alpha ~p0 ~id:"prop-grid"
          ~description:"randomized capture grid"
          ~title_of:(fun n -> "profit capture on " ^ n)
          ~spec ~networks ~bundle_counts ()
      in
      Experiment.run_cells e = e.Experiment.run ())

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_capture_bounds;
      prop_profit_chain;
      prop_every_strategy_below_optimal;
      prop_welfare_identity;
      prop_blended_demand_recovered;
      prop_bundle_prices_between_flow_optima_ced;
      prop_cost_model_invariance;
      prop_tier_count_net_profit_bounded;
      prop_ced_capture_monotone;
      prop_strategies_partition;
      prop_cell_decomposition;
    ]
