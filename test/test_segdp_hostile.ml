open Tiered

(* Adversarial corpus for the Segdp ladder (DESIGN.md §11): every
   fixture is built to stress one rung — the region-wise D&C on
   decomposed clamped logit, the SMAWK rung on Monge-violating but
   totally monotone layers, and the quadratic backstop on layers no
   fast rung can certify — and every one is pinned cut-for-cut against
   [solve_quadratic]. The per-path stats assertions keep the corpus
   honest: if a kernel change reroutes a fixture onto a different rung,
   the test fails loudly instead of silently testing nothing. *)

let cuts_testable = Alcotest.(list int)

let stats (r : Numerics.Segdp.result) = r.Numerics.Segdp.stats

let check_same name (fast : Numerics.Segdp.result)
    (exact : Numerics.Segdp.result) =
  Alcotest.check cuts_testable (name ^ " cuts") exact.Numerics.Segdp.cuts
    fast.Numerics.Segdp.cuts;
  Alcotest.(check int)
    (name ^ " segments")
    exact.Numerics.Segdp.segments fast.Numerics.Segdp.segments;
  Alcotest.(check bool)
    (name ^ " value")
    true
    (Float.equal exact.Numerics.Segdp.value fast.Numerics.Segdp.value)

(* --- hostile logit markets (region decomposition rung) ----------------- *)

(* Build a logit market with explicit valuations and costs
   ([Market.of_parameters] bypasses fitting), run the exact
   (seg_value, regions) the Optimal strategy would, and pin the
   decomposed fast path against the quadratic reference. *)
let check_decomposed_logit name ~valuations ~costs =
  let n = Array.length valuations in
  let flows =
    Fixtures.flows_of_spec
      (List.init n (fun i -> (10. +. float_of_int i, 100.)))
  in
  let m =
    Market.of_parameters
      ~spec:(Market.Logit { s0 = 0.2 })
      ~alpha:1.1 ~p0:20. ~valuations ~costs flows
  in
  let _order, seg_value, regions = Strategy.dp_inputs m in
  Alcotest.(check bool)
    (name ^ " decomposed into several regions")
    true
    (Array.length regions > 1);
  List.iter
    (fun b ->
      let fast = Numerics.Segdp.solve ~regions ~n ~n_bundles:b seg_value in
      let exact = Numerics.Segdp.solve_quadratic ~n ~n_bundles:b seg_value in
      check_same (Printf.sprintf "%s B=%d" name b) fast exact;
      Alcotest.(check int)
        (Printf.sprintf "%s B=%d ran decomposed" name b)
        (Array.length regions)
        (stats fast).Numerics.Segdp.regions;
      Alcotest.(check int)
        (Printf.sprintf "%s B=%d no backstop" name b)
        0
        (stats fast).Numerics.Segdp.fallback_layers)
    [ 2; 3; 6 ]

let test_clamped_logit_underflow_and_saturation () =
  (* Positions 20..39 carry valuations 800 below the maximum, so their
     shifted weights exp(alpha (v - vmax)) underflow to exactly 0 and
     the prefix sums go flat; positions 60.. jump to costs ~1000 above
     the minimum, past the exp(-alpha (c - cmin)) saturation point.
     Both used to trip the Monge spot-check and cost an O(n^2) layer. *)
  let n = 120 in
  let valuations =
    Array.init n (fun k -> if k >= 20 && k < 40 then 50. -. 800. else 50.)
  in
  let costs =
    Array.init n (fun k ->
        if k < 60 then 1. +. float_of_int k else 1000. +. float_of_int k)
  in
  check_decomposed_logit "clamped logit" ~valuations ~costs

let test_absorbed_weights () =
  (* Valuations only 40 below the maximum: the weights are ~e^-44 —
     positive, but below one ulp of the running prefix sum, so they are
     absorbed (w.(k+1) = w.(k) in floating point) without ever
     underflowing to zero. The flat range must still be split out. *)
  let n = 100 in
  let valuations =
    Array.init n (fun k -> if k >= 70 && k < 90 then 50. -. 40. else 50.)
  in
  let costs = Array.init n (fun k -> 1. +. (0.5 *. float_of_int k)) in
  check_decomposed_logit "absorbed weights" ~valuations ~costs

(* --- SMAWK rung (totally monotone, not inverse Monge) ------------------- *)

let test_smawk_rung () =
  (* seg i j = (1 + j) * b(i) with b alternating: the base layer is
     identically 0, so layer 1's candidate matrix IS this product —
     totally monotone (the column order of every row is the order of
     b(i), independent of j) but wildly non-Monge (adjacent quadruple
     deltas alternate sign). The Monge probe must kick it off the D&C
     rung and SMAWK must accept it, leftmost ties included. *)
  let b_of i = if i land 1 = 0 then 2. else 1. in
  let seg i j = if i = 0 then 0. else (1. +. float_of_int j) *. b_of i in
  let n = 80 in
  let fast = Numerics.Segdp.solve ~n ~n_bundles:2 seg in
  let exact = Numerics.Segdp.solve_quadratic ~n ~n_bundles:2 seg in
  check_same "smawk" fast exact;
  Alcotest.(check int) "smawk rung accepted the layer" 1
    (stats fast).Numerics.Segdp.smawk_layers;
  Alcotest.(check int) "no backstop" 0
    (stats fast).Numerics.Segdp.fallback_layers

(* --- quadratic backstop (no structure at all) --------------------------- *)

(* Deterministic pseudo-random seg_value: splitmix-style avalanche of
   (i, j) into [0, 1). No monotone structure survives, so both fast
   rungs must be rejected by their probes and the exact quadratic row
   must carry the layer — and the result is still, by construction,
   cut-for-cut the quadratic DP's. *)
let chaotic_seg n i j =
  let z = Int64.of_int ((i * n) + j + 1) in
  let z = Int64.mul z 0x9E3779B97F4A7C15L in
  let z = Int64.logxor z (Int64.shift_right_logical z 30) in
  let z = Int64.mul z 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  Int64.to_float (Int64.logand z 0xFFFFFFL) /. 16777216.

let test_backstop_rung () =
  let n = 80 in
  let seg = chaotic_seg n in
  let fast = Numerics.Segdp.solve ~n ~n_bundles:4 seg in
  let exact = Numerics.Segdp.solve_quadratic ~n ~n_bundles:4 seg in
  check_same "chaotic" fast exact;
  Alcotest.(check bool)
    "backstop exercised" true
    ((stats fast).Numerics.Segdp.fallback_layers >= 1)

let test_nan_adjacent_plateau () =
  (* A zero plateau glued to a NaN range: segments longer than 25
     positions evaluate to NaN. NaN candidates lose every strict-[>]
     comparison in the exact row, and any NaN reaching a probe rejects
     the fast rung — so the ladder must land on the backstop and agree
     with the quadratic reference exactly. *)
  let seg i j = if j - i > 25 then Float.nan else 0. in
  let n = 60 in
  let fast = Numerics.Segdp.solve ~n ~n_bundles:4 seg in
  let exact = Numerics.Segdp.solve_quadratic ~n ~n_bundles:4 seg in
  check_same "nan plateau" fast exact;
  Alcotest.(check bool)
    "backstop exercised" true
    ((stats fast).Numerics.Segdp.fallback_layers >= 1)

(* --- plateaus and degenerate shapes ------------------------------------- *)

let test_constant_rows () =
  (* Identically-zero seg_value: every partition ties at 0 and every
     quadruple holds with equality, so the D&C rung must keep the
     layer, and the strict-[>] tie-breaks must keep the single
     segment. *)
  let seg _ _ = 0. in
  let fast = Numerics.Segdp.solve ~n:64 ~n_bundles:5 seg in
  check_same "constant" fast (Numerics.Segdp.solve_quadratic ~n:64 ~n_bundles:5 seg);
  Alcotest.check cuts_testable "single segment" [] fast.Numerics.Segdp.cuts;
  Alcotest.(check int) "pure d&c (no smawk)" 0
    (stats fast).Numerics.Segdp.smawk_layers;
  Alcotest.(check int) "pure d&c (no backstop)" 0
    (stats fast).Numerics.Segdp.fallback_layers;
  Alcotest.(check int) "undecomposed" 1 (stats fast).Numerics.Segdp.regions

let test_single_flow_chaotic () =
  let seg = chaotic_seg 1 in
  let fast = Numerics.Segdp.solve ~n:1 ~n_bundles:8 seg in
  check_same "n=1" fast (Numerics.Segdp.solve_quadratic ~n:1 ~n_bundles:8 seg)

let test_n_equals_bundles () =
  (* n = B: every flow can be its own segment; layers shrink to
     single-column ranges where every rung degenerates. *)
  let n = 6 in
  let seg = chaotic_seg n in
  let fast = Numerics.Segdp.solve ~n ~n_bundles:n seg in
  check_same "n=B" fast (Numerics.Segdp.solve_quadratic ~n ~n_bundles:n seg)

let test_two_flows_one_bundle () =
  let seg = chaotic_seg 2 in
  let fast = Numerics.Segdp.solve ~n:2 ~n_bundles:1 seg in
  check_same "n=2 B=1" fast (Numerics.Segdp.solve_quadratic ~n:2 ~n_bundles:1 seg)

let test_malformed_regions_rejected () =
  List.iter
    (fun (name, regions) ->
      Alcotest.check_raises name
        (Invalid_argument
           (if Array.length regions = 0 || regions.(0) <> 0 then
              "Segdp: regions must start with 0"
            else "Segdp: regions must be strictly increasing within [0, n)"))
        (fun () ->
          ignore
            (Numerics.Segdp.solve ~regions ~n:10 ~n_bundles:2 (fun _ _ -> 0.))))
    [
      ("empty", [||]);
      ("missing leading 0", [| 1; 4 |]);
      ("not increasing", [| 0; 5; 5 |]);
      ("start out of range", [| 0; 10 |]);
    ]

let suite =
  [
    Alcotest.test_case "clamped logit: underflow + saturation" `Quick
      test_clamped_logit_underflow_and_saturation;
    Alcotest.test_case "absorbed weights decompose" `Quick
      test_absorbed_weights;
    Alcotest.test_case "smawk rung (TM, non-Monge)" `Quick test_smawk_rung;
    Alcotest.test_case "backstop rung (chaotic seg)" `Quick test_backstop_rung;
    Alcotest.test_case "nan-adjacent plateau" `Quick test_nan_adjacent_plateau;
    Alcotest.test_case "constant rows" `Quick test_constant_rows;
    Alcotest.test_case "single flow, chaotic" `Quick test_single_flow_chaotic;
    Alcotest.test_case "n = n_bundles" `Quick test_n_equals_bundles;
    Alcotest.test_case "two flows, one bundle" `Quick test_two_flows_one_bundle;
    Alcotest.test_case "malformed regions rejected" `Quick
      test_malformed_regions_rejected;
  ]
